//===--- interp/interp.cpp -------------------------------------------------===//

#include "interp/interp.h"

#include <cassert>
#include <cmath>
#include <map>
#include <optional>

#include "kernels/kernel.h"
#include "nrrd/nrrd.h"
#include "observe/profiler.h"
#include "runtime/scheduler.h"
#include "support/strings.h"
#include "tensor/eigen.h"

namespace diderot::interp {

namespace {

using ir::Instr;
using ir::Op;
using ir::ValueId;

bool vBool(const RtVal &V) { return std::get<bool>(V); }
int64_t vInt(const RtVal &V) { return std::get<int64_t>(V); }
const Tensor &vTensor(const RtVal &V) { return std::get<Tensor>(V); }
double vReal(const RtVal &V) { return std::get<Tensor>(V).asScalar(); }
const Image &vImage(const RtVal &V) {
  return *std::get<std::shared_ptr<const Image>>(V);
}

RtVal mkReal(double D) { return Tensor::scalar(D); }

/// Evaluates one function. Register file allocated per call.
///
/// When \p Prof is non-null, every profiled instruction (ir::profClassOf)
/// with a valid source location bumps the dense (line, class) counter —
/// the interpreter half of the source-level cost profiler.
class Evaluator {
public:
  Evaluator(const ir::Function &F, const std::vector<RtVal> &Globals,
            uint64_t *Prof = nullptr, int ProfMaxLine = 0)
      : F(F), Globals(Globals), Regs(static_cast<size_t>(F.numValues())),
        Prof(Prof), ProfMaxLine(ProfMaxLine) {}

  Result<CallResult> call(const std::vector<RtVal> &Args) {
    assert(static_cast<int>(Args.size()) == F.NumParams &&
           "argument count mismatch");
    for (size_t I = 0; I < Args.size(); ++I)
      Regs[I] = Args[I];
    std::optional<CallResult> Out;
    Status S = evalRegion(F.Body, nullptr, Out);
    if (!S.isOk())
      return Result<CallResult>::error(strf("@", F.Name, ": ", S.message()));
    if (!Out)
      return Result<CallResult>::error(
          strf("@", F.Name, ": function ended without Exit"));
    return std::move(*Out);
  }

private:
  const ir::Function &F;
  const std::vector<RtVal> &Globals;
  std::vector<RtVal> Regs;
  uint64_t *Prof = nullptr; ///< dense (line, class) counters, or null
  int ProfMaxLine = 0;      ///< highest line the counter table covers

  const RtVal &get(ValueId V) const { return Regs[static_cast<size_t>(V)]; }
  double real(const Instr &I, size_t K) const { return vReal(get(I.Operands[K])); }

  Status evalRegion(const ir::Region &R, const std::vector<ValueId> *IfResults,
                    std::optional<CallResult> &Out);
  Status evalInstr(const Instr &I, const std::vector<ValueId> *IfResults,
                   std::optional<CallResult> &Out);
};

Status Evaluator::evalRegion(const ir::Region &R,
                             const std::vector<ValueId> *IfResults,
                             std::optional<CallResult> &Out) {
  for (const Instr &I : R.Body) {
    Status S = evalInstr(I, IfResults, Out);
    if (!S.isOk())
      return S;
    if (Out)
      return Status::ok(); // an Exit propagates out of every region
  }
  return Status::ok();
}

Status Evaluator::evalInstr(const Instr &I,
                            const std::vector<ValueId> *IfResults,
                            std::optional<CallResult> &Out) {
  if (Prof) {
    int C = ir::profClassOf(I.Opcode);
    if (C >= 0 && I.Loc.isValid() && I.Loc.Line <= ProfMaxLine)
      ++Prof[static_cast<size_t>(I.Loc.Line) * observe::NumProfClasses +
             static_cast<size_t>(C)];
  }
  auto Set = [&](RtVal V) { Regs[static_cast<size_t>(I.Results[0])] = std::move(V); };
  const Type &ResTy =
      I.Results.empty() ? Type::error() : F.typeOf(I.Results[0]);

  switch (I.Opcode) {
  case Op::ConstBool:
    Set(std::get<bool>(I.A));
    return Status::ok();
  case Op::ConstInt:
    Set(std::get<int64_t>(I.A));
    return Status::ok();
  case Op::ConstReal:
    Set(mkReal(std::get<double>(I.A)));
    return Status::ok();
  case Op::ConstString:
    Set(std::get<std::string>(I.A));
    return Status::ok();
  case Op::ConstTensor:
    Set(std::get<Tensor>(I.A));
    return Status::ok();
  case Op::GlobalGet: {
    size_t Idx = static_cast<size_t>(std::get<int64_t>(I.A));
    assert(Idx < Globals.size());
    Set(Globals[Idx]);
    return Status::ok();
  }

  case Op::Add:
  case Op::Sub: {
    const RtVal &A = get(I.Operands[0]);
    if (std::holds_alternative<int64_t>(A)) {
      int64_t B = vInt(get(I.Operands[1]));
      Set(I.Opcode == Op::Add ? vInt(A) + B : vInt(A) - B);
    } else {
      const Tensor &TB = vTensor(get(I.Operands[1]));
      Set(I.Opcode == Op::Add ? add(vTensor(A), TB) : sub(vTensor(A), TB));
    }
    return Status::ok();
  }
  case Op::Mul: {
    const RtVal &A = get(I.Operands[0]);
    if (std::holds_alternative<int64_t>(A))
      Set(vInt(A) * vInt(get(I.Operands[1])));
    else
      Set(mkReal(vReal(A) * real(I, 1)));
    return Status::ok();
  }
  case Op::Div: {
    const RtVal &A = get(I.Operands[0]);
    if (std::holds_alternative<int64_t>(A)) {
      int64_t B = vInt(get(I.Operands[1]));
      if (B == 0)
        return Status::error("integer division by zero");
      Set(vInt(A) / B);
    } else {
      Set(mkReal(vReal(A) / real(I, 1)));
    }
    return Status::ok();
  }
  case Op::Mod: {
    int64_t B = vInt(get(I.Operands[1]));
    if (B == 0)
      return Status::error("integer modulo by zero");
    Set(vInt(get(I.Operands[0])) % B);
    return Status::ok();
  }
  case Op::Neg: {
    const RtVal &A = get(I.Operands[0]);
    if (std::holds_alternative<int64_t>(A))
      Set(-vInt(A));
    else
      Set(neg(vTensor(A)));
    return Status::ok();
  }
  case Op::Min:
  case Op::Max: {
    const RtVal &A = get(I.Operands[0]);
    bool IsMin = I.Opcode == Op::Min;
    if (std::holds_alternative<int64_t>(A)) {
      int64_t B = vInt(get(I.Operands[1]));
      Set(IsMin ? std::min(vInt(A), B) : std::max(vInt(A), B));
    } else {
      double B = real(I, 1);
      Set(mkReal(IsMin ? std::min(vReal(A), B) : std::max(vReal(A), B)));
    }
    return Status::ok();
  }
  case Op::Scale:
    Set(scale(real(I, 0), vTensor(get(I.Operands[1]))));
    return Status::ok();
  case Op::DivScale:
    Set(divide(vTensor(get(I.Operands[0])), real(I, 1)));
    return Status::ok();
  case Op::Pow:
    Set(mkReal(std::pow(real(I, 0), real(I, 1))));
    return Status::ok();

  case Op::Dot:
    Set(dot(vTensor(get(I.Operands[0])), vTensor(get(I.Operands[1]))));
    return Status::ok();
  case Op::Cross:
    Set(cross(vTensor(get(I.Operands[0])), vTensor(get(I.Operands[1]))));
    return Status::ok();
  case Op::Outer:
    Set(outer(vTensor(get(I.Operands[0])), vTensor(get(I.Operands[1]))));
    return Status::ok();
  case Op::Norm:
    Set(mkReal(norm(vTensor(get(I.Operands[0])))));
    return Status::ok();
  case Op::Normalize:
    Set(normalize(vTensor(get(I.Operands[0]))));
    return Status::ok();
  case Op::Trace:
    Set(mkReal(trace(vTensor(get(I.Operands[0])))));
    return Status::ok();
  case Op::Det:
    Set(mkReal(det(vTensor(get(I.Operands[0])))));
    return Status::ok();
  case Op::Inverse:
    Set(inverse(vTensor(get(I.Operands[0]))));
    return Status::ok();
  case Op::Transpose:
    Set(transpose(vTensor(get(I.Operands[0]))));
    return Status::ok();
  case Op::Modulate:
    Set(modulate(vTensor(get(I.Operands[0])), vTensor(get(I.Operands[1]))));
    return Status::ok();
  case Op::Lerp:
    Set(lerp(vTensor(get(I.Operands[0])), vTensor(get(I.Operands[1])),
             real(I, 2)));
    return Status::ok();
  case Op::Evals:
    Set(eigenvalues(vTensor(get(I.Operands[0]))));
    return Status::ok();
  case Op::Evecs:
    Set(eigenvectors(vTensor(get(I.Operands[0]))));
    return Status::ok();
  case Op::TensorCons: {
    Tensor T{ResTy.shape()};
    for (size_t K = 0; K < I.Operands.size(); ++K)
      T[static_cast<int>(K)] = real(I, K);
    Set(std::move(T));
    return Status::ok();
  }
  case Op::TensorIndex: {
    const Tensor &T = vTensor(get(I.Operands[0]));
    const std::vector<int> &Idx = std::get<std::vector<int>>(I.A);
    int Flat = 0;
    for (size_t K = 0; K < Idx.size(); ++K)
      Flat = Flat * T.shape()[static_cast<int>(K)] + Idx[K];
    int Rest = 1;
    for (int A = static_cast<int>(Idx.size()); A < T.shape().order(); ++A)
      Rest *= T.shape()[A];
    if (Rest == 1) {
      Set(mkReal(T[Flat]));
    } else {
      Tensor Sub{ResTy.shape()};
      for (int K = 0; K < Rest; ++K)
        Sub[K] = T[Flat * Rest + K];
      Set(std::move(Sub));
    }
    return Status::ok();
  }
  case Op::SeqCons: {
    // Sequences are represented as a flat tensor of their components for
    // interpretation purposes... except elements may be non-tensor. We store
    // sequences as a Tensor when elements are tensors, which covers the
    // language subset (sequence elements are value types; int sequences are
    // stored as reals and converted back on indexing).
    int N = static_cast<int>(I.Operands.size());
    int Per = ResTy.elem().isTensor() ? ResTy.elem().shape().numComponents()
                                      : 1;
    Tensor T{N * Per == 1 ? Shape{} : Shape{std::max(2, N * Per)}};
    // Build exactly N*Per slots; shape extent mismatch is harmless since we
    // only index through SeqIndex below, but keep it exact when possible.
    std::vector<double> Flat;
    for (const ValueId V : I.Operands) {
      const RtVal &E = get(V);
      if (std::holds_alternative<int64_t>(E))
        Flat.push_back(static_cast<double>(vInt(E)));
      else
        for (int K = 0; K < vTensor(E).numComponents(); ++K)
          Flat.push_back(vTensor(E)[K]);
    }
    if (Flat.size() == 1)
      Set(mkReal(Flat[0]));
    else
      Set(Tensor(Shape{static_cast<int>(Flat.size())}, std::move(Flat)));
    return Status::ok();
  }
  case Op::SeqIndex: {
    const Type &SeqTy = F.typeOf(I.Operands[0]);
    const Tensor &T = vTensor(get(I.Operands[0]));
    int64_t Idx = vInt(get(I.Operands[1]));
    int Per = SeqTy.elem().isTensor() ? SeqTy.elem().shape().numComponents()
                                      : 1;
    if (Idx < 0 || Idx >= SeqTy.seqLen())
      return Status::error(strf("sequence index ", Idx, " out of range"));
    if (SeqTy.elem().isInt()) {
      Set(static_cast<int64_t>(T[static_cast<int>(Idx)]));
    } else if (Per == 1) {
      Set(mkReal(T[static_cast<int>(Idx)]));
    } else {
      Tensor E{SeqTy.elem().shape()};
      for (int K = 0; K < Per; ++K)
        E[K] = T[static_cast<int>(Idx) * Per + K];
      Set(std::move(E));
    }
    return Status::ok();
  }

  case Op::Sqrt:
    Set(mkReal(std::sqrt(real(I, 0))));
    return Status::ok();
  case Op::Sin:
    Set(mkReal(std::sin(real(I, 0))));
    return Status::ok();
  case Op::Cos:
    Set(mkReal(std::cos(real(I, 0))));
    return Status::ok();
  case Op::Tan:
    Set(mkReal(std::tan(real(I, 0))));
    return Status::ok();
  case Op::Asin:
    Set(mkReal(std::asin(real(I, 0))));
    return Status::ok();
  case Op::Acos:
    Set(mkReal(std::acos(real(I, 0))));
    return Status::ok();
  case Op::Atan:
    Set(mkReal(std::atan(real(I, 0))));
    return Status::ok();
  case Op::Atan2:
    Set(mkReal(std::atan2(real(I, 0), real(I, 1))));
    return Status::ok();
  case Op::Exp:
    Set(mkReal(std::exp(real(I, 0))));
    return Status::ok();
  case Op::Log:
    Set(mkReal(std::log(real(I, 0))));
    return Status::ok();
  case Op::Floor:
    Set(mkReal(std::floor(real(I, 0))));
    return Status::ok();
  case Op::Ceil:
    Set(mkReal(std::ceil(real(I, 0))));
    return Status::ok();
  case Op::Round:
    Set(mkReal(std::round(real(I, 0))));
    return Status::ok();
  case Op::Trunc:
    Set(mkReal(std::trunc(real(I, 0))));
    return Status::ok();
  case Op::Abs: {
    const RtVal &A = get(I.Operands[0]);
    if (std::holds_alternative<int64_t>(A))
      Set(std::abs(vInt(A)));
    else
      Set(mkReal(std::abs(vReal(A))));
    return Status::ok();
  }
  case Op::Clamp:
    Set(mkReal(std::min(real(I, 2), std::max(real(I, 1), real(I, 0)))));
    return Status::ok();
  case Op::IntToReal:
    Set(mkReal(static_cast<double>(vInt(get(I.Operands[0])))));
    return Status::ok();
  case Op::RealToInt:
    Set(static_cast<int64_t>(std::floor(real(I, 0))));
    return Status::ok();

  case Op::Lt:
  case Op::Le:
  case Op::Gt:
  case Op::Ge:
  case Op::Eq:
  case Op::Ne: {
    const RtVal &A = get(I.Operands[0]);
    const RtVal &B = get(I.Operands[1]);
    auto Cmp = [&](auto X, auto Y) {
      switch (I.Opcode) {
      case Op::Lt:
        return X < Y;
      case Op::Le:
        return X <= Y;
      case Op::Gt:
        return X > Y;
      case Op::Ge:
        return X >= Y;
      case Op::Eq:
        return X == Y;
      default:
        return X != Y;
      }
    };
    if (std::holds_alternative<int64_t>(A))
      Set(Cmp(vInt(A), vInt(B)));
    else if (std::holds_alternative<bool>(A))
      Set(I.Opcode == Op::Eq ? vBool(A) == vBool(B) : vBool(A) != vBool(B));
    else if (std::holds_alternative<std::string>(A))
      Set(Cmp(std::get<std::string>(A), std::get<std::string>(B)));
    else
      Set(Cmp(vReal(A), vReal(B)));
    return Status::ok();
  }
  case Op::And:
    Set(vBool(get(I.Operands[0])) && vBool(get(I.Operands[1])));
    return Status::ok();
  case Op::Or:
    Set(vBool(get(I.Operands[0])) || vBool(get(I.Operands[1])));
    return Status::ok();
  case Op::Not:
    Set(!vBool(get(I.Operands[0])));
    return Status::ok();
  case Op::Select:
    Set(get(I.Operands[vBool(get(I.Operands[0])) ? 1 : 2]));
    return Status::ok();

  case Op::LoadImage: {
    const std::string &Path = std::get<std::string>(I.A);
    Result<Nrrd> N = nrrdRead(Path);
    if (!N.isOk())
      return Status::error(N.message());
    Result<Image> Img = Image::fromNrrd(*N, ResTy.dim(), ResTy.shape());
    if (!Img.isOk())
      return Status::error(Img.message());
    Set(std::make_shared<const Image>(Img.take()));
    return Status::ok();
  }
  case Op::WorldToImage: {
    const Image &Img = vImage(get(I.Operands[0]));
    int D = Img.dim();
    double World[3], Idx[3];
    const RtVal &Pos = get(I.Operands[1]);
    if (D == 1)
      World[0] = vReal(Pos);
    else
      for (int A = 0; A < D; ++A)
        World[A] = vTensor(Pos)[A];
    Img.worldToIndex(World, Idx);
    if (D == 1)
      Set(mkReal(Idx[0]));
    else {
      Tensor T{Shape{D}};
      for (int A = 0; A < D; ++A)
        T[A] = Idx[A];
      Set(std::move(T));
    }
    return Status::ok();
  }
  case Op::ImageGradXform: {
    const Image &Img = vImage(get(I.Operands[0]));
    int D = Img.dim();
    const std::vector<double> &Mt = Img.gradientTransform();
    if (D == 1)
      Set(mkReal(Mt[0]));
    else
      Set(Tensor(Shape{D, D}, Mt));
    return Status::ok();
  }
  case Op::InsideTest: {
    const Image &Img = vImage(get(I.Operands[0]));
    int Support = static_cast<int>(std::get<int64_t>(I.A));
    bool In = true;
    for (int A = 0; A + 1 < static_cast<int>(I.Operands.size()); ++A) {
      int64_t N = vInt(get(I.Operands[static_cast<size_t>(A + 1)]));
      if (N + 1 - Support < 0 || N + Support > Img.size(A) - 1)
        In = false;
    }
    Set(In);
    return Status::ok();
  }
  case Op::VoxelLoad: {
    const Image &Img = vImage(get(I.Operands[0]));
    const auto &VA = std::get<ir::VoxelAttr>(I.A);
    int Idx[3];
    for (size_t A = 0; A + 1 < I.Operands.size(); ++A)
      Idx[A] = static_cast<int>(vInt(get(I.Operands[A + 1]))) +
               VA.Offsets[A];
    Set(mkReal(Img.sample(Idx, VA.Comp)));
    return Status::ok();
  }
  case Op::KernelWeight: {
    const auto &KW = std::get<ir::KernelWeightAttr>(I.A);
    const Kernel *K = kernels::byName(KW.Kernel);
    if (!K)
      return Status::error(strf("unknown kernel '", KW.Kernel, "'"));
    Kernel DK = *K;
    for (int L = 0; L < KW.Deriv; ++L)
      DK = DK.derivative();
    Set(mkReal(DK.weightPoly(KW.Tap).eval(real(I, 0))));
    return Status::ok();
  }
  case Op::PolyEval: {
    const auto &Coeffs = std::get<std::vector<double>>(I.A);
    Set(mkReal(Polynomial(Coeffs).eval(real(I, 0))));
    return Status::ok();
  }

  case Op::If: {
    bool Cond = vBool(get(I.Operands[0]));
    return evalRegion(I.Regions[Cond ? 0 : 1], &I.Results, Out);
  }
  case Op::Yield: {
    assert(IfResults && "yield outside an if region");
    for (size_t K = 0; K < I.Operands.size(); ++K)
      Regs[static_cast<size_t>((*IfResults)[K])] = get(I.Operands[K]);
    return Status::ok();
  }
  case Op::Exit: {
    CallResult CR;
    CR.Kind = std::get<ir::ExitAttr>(I.A).K;
    for (ValueId V : I.Operands)
      CR.Results.push_back(get(V));
    Out = std::move(CR);
    return Status::ok();
  }

  default:
    return Status::error(strf("interpreter cannot evaluate op '",
                              ir::opName(I.Opcode), "'"));
  }
}

} // namespace

Result<CallResult> evalFunction(const ir::Function &F,
                                const std::vector<RtVal> &Args,
                                const std::vector<RtVal> &Globals) {
  Evaluator E(F, Globals);
  return E.call(Args);
}

//===----------------------------------------------------------------------===//
// Whole-program instance
//===----------------------------------------------------------------------===//

namespace {

class InterpInstance final : public rt::ProgramInstance {
public:
  explicit InterpInstance(ir::Module MIn) : M(std::move(MIn)) {
    Inputs.resize(M.Globals.size());
    for (size_t I = 0; I < M.Globals.size(); ++I)
      ByName[M.Globals[I].Name] = static_cast<int>(I);
  }

  std::vector<rt::InputDesc> inputs() const override {
    std::vector<rt::InputDesc> Out;
    for (const ir::GlobalVar &G : M.Globals)
      if (G.IsInput)
        Out.push_back({G.Name, G.Ty.str(), G.DefaultFn >= 0});
    return Out;
  }

  std::vector<rt::OutputDesc> outputs() const override {
    std::vector<rt::OutputDesc> Out;
    for (const ir::StateSlot &S : M.State)
      if (S.IsOutput)
        Out.push_back({S.Name, S.Ty.isTensor() ? S.Ty.shape() : Shape{},
                       S.Ty.isInt()});
    return Out;
  }

  Status setInputReal(const std::string &Name, double V) override {
    return setVal(Name, mkReal(V), [](const Type &T) { return T.isReal(); });
  }
  Status setInputInt(const std::string &Name, int64_t V) override {
    return setVal(Name, V, [](const Type &T) { return T.isInt(); });
  }
  Status setInputBool(const std::string &Name, bool V) override {
    return setVal(Name, V, [](const Type &T) { return T.isBool(); });
  }
  Status setInputString(const std::string &Name,
                        const std::string &V) override {
    return setVal(Name, V, [](const Type &T) { return T.isString(); });
  }
  Status setInputTensor(const std::string &Name,
                        const std::vector<double> &Components) override {
    auto It = ByName.find(Name);
    if (It == ByName.end() || !M.Globals[static_cast<size_t>(It->second)].IsInput)
      return Status::error(strf("no input named '", Name, "'"));
    const Type &T = M.Globals[static_cast<size_t>(It->second)].Ty;
    if (!T.isTensor() ||
        T.shape().numComponents() != static_cast<int>(Components.size()))
      return Status::error(strf("input '", Name, "' has type ", T.str()));
    Inputs[static_cast<size_t>(It->second)] =
        Tensor(T.shape(), Components);
    return Status::ok();
  }
  Status setInputImage(const std::string &Name, const Image &Img) override {
    auto It = ByName.find(Name);
    if (It == ByName.end() || !M.Globals[static_cast<size_t>(It->second)].IsInput)
      return Status::error(strf("no input named '", Name, "'"));
    const Type &T = M.Globals[static_cast<size_t>(It->second)].Ty;
    if (!T.isImage() || T.dim() != Img.dim() || T.shape() != Img.valueShape())
      return Status::error(strf("input '", Name, "' has type ", T.str()));
    Inputs[static_cast<size_t>(It->second)] =
        std::make_shared<const Image>(Img);
    return Status::ok();
  }

  Status initialize() override;
  Result<rt::RunStats> run(const rt::RunConfig &C) override;

  observe::ProfileData profile() const override { return LastProfile; }

  // Snapshot the persistent Recorder's registry (atomic loads only): valid
  // concurrently with run(), which is what the driver's /metrics endpoint
  // relies on for live gauges.
  observe::MetricsData liveMetrics() const override {
    return Rec.metricsData();
  }

  const observe::DigestLog *digestLog() const override {
    return DLog.Entries.empty() ? nullptr : &DLog;
  }

  std::vector<int> outputDims() const override {
    if (M.IsGrid)
      return GridDims;
    return {static_cast<int>(numStable())};
  }

  Status getOutput(const std::string &Name,
                   std::vector<double> &Data) const override;

  size_t numStrands() const override { return States.size(); }
  size_t numStable() const override {
    size_t N = 0;
    for (rt::StrandStatus S : StatusVec)
      N += S == rt::StrandStatus::Stable;
    return N;
  }
  size_t numDead() const override {
    size_t N = 0;
    for (rt::StrandStatus S : StatusVec)
      N += S == rt::StrandStatus::Dead;
    return N;
  }
  size_t numFaulted() const override {
    size_t N = 0;
    for (rt::StrandStatus S : StatusVec)
      N += S == rt::StrandStatus::Faulted;
    return N;
  }

private:
  template <typename Pred>
  Status setVal(const std::string &Name, RtVal V, Pred &&P) {
    auto It = ByName.find(Name);
    if (It == ByName.end() ||
        !M.Globals[static_cast<size_t>(It->second)].IsInput)
      return Status::error(strf("no input named '", Name, "'"));
    const Type &T = M.Globals[static_cast<size_t>(It->second)].Ty;
    if (!P(T))
      return Status::error(strf("input '", Name, "' has type ", T.str()));
    Inputs[static_cast<size_t>(It->second)] = std::move(V);
    return Status::ok();
  }

  /// One canonical slot for the digest (observe/digest.h): hash it and,
  /// with the state log armed, retain its canonical bits.
  void digestSlot(double V, observe::StrandStateHasher &H) {
    H.slot(V);
    if (DLog.HasStates)
      DLog.Slots.push_back(observe::canonicalBits(V));
  }

  /// Append one digest entry over the current StatusVec and strand states.
  /// RtVals flatten in slot order — params first, then state vars, tensor
  /// components row-major, ints and bools as doubles — exactly the order
  /// the native emitter scalarizes the Strand struct, which is what makes
  /// interp and native digests bit-equal (DoublePrecision native only; a
  /// float32 native build rounds differently by design).
  void captureDigestEntry() {
    observe::StrandStateHasher H;
    for (size_t S = 0; S < States.size(); ++S) {
      uint8_t St = static_cast<uint8_t>(StatusVec[S]);
      H.status(St);
      if (DLog.HasStates)
        DLog.Status.push_back(St);
      for (const RtVal &V : States[S]) {
        if (const Tensor *T = std::get_if<Tensor>(&V))
          for (int K = 0; K < T->numComponents(); ++K)
            digestSlot((*T)[K], H);
        else if (const int64_t *I = std::get_if<int64_t>(&V))
          digestSlot(static_cast<double>(*I), H);
        else if (const bool *B = std::get_if<bool>(&V))
          digestSlot(*B ? 1.0 : 0.0, H);
        // Strings and images have no numeric slots in either engine.
      }
    }
    DLog.Entries.push_back(H.digest());
  }

  /// Canonical slot count of one strand's state (all strands identical).
  static int64_t strandSlotCount(const std::vector<RtVal> &State) {
    int64_t N = 0;
    for (const RtVal &V : State) {
      if (const Tensor *T = std::get_if<Tensor>(&V))
        N += T->numComponents();
      else if (std::holds_alternative<int64_t>(V) ||
               std::holds_alternative<bool>(V))
        ++N;
    }
    return N;
  }

  ir::Module M;
  std::map<std::string, int> ByName;
  std::vector<RtVal> Inputs;       ///< pending input values (pre-initialize)
  std::vector<RtVal> GlobalStore;  ///< all globals after initialize
  std::vector<std::vector<RtVal>> States;
  std::vector<rt::StrandStatus> StatusVec;
  std::vector<int> GridDims;
  observe::ProfileData LastProfile;
  /// Instance member (not run()-local) so liveMetrics() can scrape the
  /// registry while a run is in flight.
  observe::Recorder Rec;
  observe::DigestLog DLog; ///< digest stream of the last recorded run
  bool Initialized = false;
};

/// Count the static (line, class) instrumentation sites of a region tree —
/// the interpreter's version of the native backend's source-map table.
void addProfileSites(const ir::Region &R, observe::ProfileData &P) {
  for (const Instr &I : R.Body) {
    int C = ir::profClassOf(I.Opcode);
    if (C >= 0 && I.Loc.isValid())
      ++P.at(I.Loc.Line).Sites[static_cast<size_t>(C)];
    for (const ir::Region &Sub : I.Regions)
      addProfileSites(Sub, P);
  }
}

Status InterpInstance::initialize() {
  if (Initialized)
    return Status::error("instance already initialized");
  std::vector<RtVal> Empty;
  // Input defaults (in declaration order) for unset inputs.
  for (size_t I = 0; I < M.Globals.size(); ++I) {
    const ir::GlobalVar &G = M.Globals[I];
    if (!G.IsInput || !std::holds_alternative<std::monostate>(Inputs[I]))
      continue;
    if (G.DefaultFn < 0)
      return Status::error(strf("input '", G.Name,
                                "' has no default and was not set"));
    Result<CallResult> R = evalFunction(
        M.InputDefaults[static_cast<size_t>(G.DefaultFn)], {}, Inputs);
    if (!R.isOk())
      return Status::error(R.message());
    Inputs[I] = R->Results[0];
  }
  // Global initialization.
  std::vector<RtVal> GIArgs;
  for (size_t I = 0; I < M.Globals.size(); ++I)
    if (M.Globals[I].IsInput)
      GIArgs.push_back(Inputs[I]);
  Result<CallResult> GI = evalFunction(M.GlobalInit, GIArgs, Empty);
  if (!GI.isOk())
    return Status::error(GI.message());
  GlobalStore.resize(M.Globals.size());
  {
    size_t NonInput = 0;
    for (size_t I = 0; I < M.Globals.size(); ++I)
      GlobalStore[I] = M.Globals[I].IsInput ? Inputs[I]
                                            : GI->Results[NonInput++];
  }
  // Iterator ranges.
  std::vector<int64_t> Lo, Hi;
  for (size_t K = 0; K < M.IterLo.size(); ++K) {
    Result<CallResult> L = evalFunction(M.IterLo[K], {}, GlobalStore);
    Result<CallResult> H = evalFunction(M.IterHi[K], {}, GlobalStore);
    if (!L.isOk())
      return Status::error(L.message());
    if (!H.isOk())
      return Status::error(H.message());
    Lo.push_back(vInt(L->Results[0]));
    Hi.push_back(vInt(H->Results[0]));
    GridDims.push_back(
        static_cast<int>(std::max<int64_t>(0, Hi.back() - Lo.back() + 1)));
  }
  size_t Total = 1;
  for (int D : GridDims)
    Total *= static_cast<size_t>(D);

  // Create strands (first iterator is the slowest axis).
  States.reserve(Total);
  std::vector<int64_t> Iter(Lo.begin(), Lo.end());
  for (size_t S = 0; S < Total; ++S) {
    std::vector<RtVal> IterVals;
    for (int64_t V : Iter)
      IterVals.push_back(V);
    Result<CallResult> ArgsR = evalFunction(M.CreateArgs, IterVals, GlobalStore);
    if (!ArgsR.isOk())
      return Status::error(ArgsR.message());
    Result<CallResult> InitR =
        evalFunction(M.StrandInit, ArgsR->Results, GlobalStore);
    if (!InitR.isOk())
      return Status::error(InitR.message());
    // Full state = strand params ++ state vars.
    std::vector<RtVal> State = ArgsR->Results;
    for (RtVal &V : InitR->Results)
      State.push_back(std::move(V));
    States.push_back(std::move(State));
    // Advance the iterator (last axis fastest).
    for (size_t K = Iter.size(); K-- > 0;) {
      if (++Iter[K] <= Hi[K])
        break;
      Iter[K] = Lo[K];
    }
  }
  StatusVec.assign(Total, rt::StrandStatus::Active);
  Initialized = true;
  return Status::ok();
}

Result<rt::RunStats> InterpInstance::run(const rt::RunConfig &C) {
  if (!Initialized)
    return Result<rt::RunStats>::error("run() before initialize()");
  const int MaxSupersteps = C.MaxSupersteps;
  const int NumWorkers = C.NumWorkers;
  const bool CollectStats =
      C.CollectStats || C.CollectLifecycle || C.CollectMetrics;
  std::string FirstError;
  std::mutex ErrLock;

  observe::Profiler Prof;
  if (C.CollectProfile)
    Prof.start(NumWorkers <= 0 ? 1 : NumWorkers, ir::maxSourceLine(M));
  const bool Profiling = Prof.enabled();

  // Fault containment: with an active policy, evaluator runtime errors
  // (division by zero, out-of-range index, ...) and non-finite state are
  // trapped into StrandFault records; without one, the legacy first-error
  // path fails the whole run as before.
  rt::RunControl Ctl(C.Policy);
  rt::RunControl *CtlP = C.Policy.active() ? &Ctl : nullptr;
  const bool StrictFp = C.Policy.StrictFp;
  auto stateFinite = [](const std::vector<RtVal> &State) {
    for (const RtVal &V : State)
      if (const Tensor *T = std::get_if<Tensor>(&V))
        for (int K = 0; K < T->numComponents(); ++K)
          if (!std::isfinite((*T)[K]))
            return false;
    return true;
  };

  auto Update = [&](size_t Idx, int W) -> rt::StrandStatus {
    uint64_t *Shard = Profiling ? Prof.shard(W) : nullptr;
    Evaluator E(M.Update, GlobalStore, Shard, Prof.maxLine());
    Result<CallResult> R = E.call(States[Idx]);
    if (!R.isOk()) {
      if (CtlP) {
        CtlP->recordFault(W, static_cast<uint64_t>(Idx),
                          rt::FaultKind::Exception, R.message());
        return rt::StrandStatus::Faulted;
      }
      std::lock_guard<std::mutex> G(ErrLock);
      if (FirstError.empty())
        FirstError = R.message();
      return rt::StrandStatus::Dead;
    }
    States[Idx] = std::move(R->Results);
    rt::StrandStatus Ret = rt::StrandStatus::Dead;
    switch (R->Kind) {
    case ir::ExitAttr::Continue:
      Ret = rt::StrandStatus::Active;
      break;
    case ir::ExitAttr::Stabilize: {
      if (M.hasStabilize()) {
        Evaluator SE(M.Stabilize, GlobalStore, Shard, Prof.maxLine());
        Result<CallResult> SR = SE.call(States[Idx]);
        if (SR.isOk())
          States[Idx] = std::move(SR->Results);
      }
      Ret = rt::StrandStatus::Stable;
      break;
    }
    case ir::ExitAttr::Die:
      Ret = rt::StrandStatus::Dead;
      break;
    }
    if (StrictFp && Ret != rt::StrandStatus::Dead &&
        !stateFinite(States[Idx])) {
      CtlP->recordFault(W, static_cast<uint64_t>(Idx),
                        rt::FaultKind::NonFinite,
                        "strand state is not finite");
      return rt::StrandStatus::Faulted;
    }
    return Ret;
  };
  observe::Recorder *R = CollectStats ? &Rec : nullptr;
  Rec.start(NumWorkers <= 0 ? 0 : NumWorkers, C.CollectLifecycle,
            C.CollectMetrics);
  DLog.clear(); // stale digests must not outlive a non-digest run
  rt::StepHook Hook;
  const rt::StepHook *HookP = nullptr;
  if (C.CollectDigests || C.CollectStateLog) {
    DLog.HasStates = C.CollectStateLog;
    DLog.NumStrands = static_cast<int64_t>(States.size());
    DLog.NumSlots = States.empty() ? 0 : strandSlotCount(States[0]);
    captureDigestEntry(); // entry 0: post-initialize state
    Hook = [this](int) { captureDigestEntry(); };
    HookP = &Hook;
  }
  int Steps = NumWorkers <= 0
                  ? rt::runSequential(StatusVec, Update, MaxSupersteps, R,
                                      CtlP, HookP)
                  : rt::runScheduled(C.Sched, StatusVec, Update,
                                     MaxSupersteps, NumWorkers, C.BlockSize,
                                     R, CtlP, HookP);
  if (!FirstError.empty())
    return Result<rt::RunStats>::error(FirstError);
  if (Profiling) {
    LastProfile = Prof.take();
    addProfileSites(M.Update.Body, LastProfile);
    if (M.hasStabilize())
      addProfileSites(M.Stabilize.Body, LastProfile);
  }
  if (CtlP)
    Rec.countFault(static_cast<uint64_t>(Ctl.faultCount()));
  rt::RunStats Stats;
  if (CollectStats) {
    Stats = Rec.take(Steps, NumWorkers <= 0 ? 0 : NumWorkers);
  } else {
    Stats.Steps = Steps;
    Stats.NumWorkers = NumWorkers <= 0 ? 0 : NumWorkers;
    Stats.WallNs = Rec.nowNs();
  }
  bool Quiesced = true;
  for (rt::StrandStatus S : StatusVec)
    if (S == rt::StrandStatus::Active) {
      Quiesced = false;
      break;
    }
  if (CtlP) {
    Stats.Outcome = Ctl.finish(Quiesced);
    Stats.Faults = Ctl.takeFaults();
  } else {
    Stats.Outcome = Quiesced ? rt::RunOutcome::Converged
                             : rt::RunOutcome::StepLimit;
  }
  return Stats;
}

Status InterpInstance::getOutput(const std::string &Name,
                                 std::vector<double> &Data) const {
  int Slot = -1;
  for (size_t I = 0; I < M.State.size(); ++I)
    if (M.State[I].IsOutput && M.State[I].Name == Name)
      Slot = static_cast<int>(I);
  if (Slot < 0)
    return Status::error(strf("no output named '", Name, "'"));
  size_t StateIdx = M.StrandParams.size() + static_cast<size_t>(Slot);
  const Type &T = M.State[static_cast<size_t>(Slot)].Ty;
  int NComp = T.isTensor() ? T.shape().numComponents() : 1;

  Data.clear();
  for (size_t S = 0; S < States.size(); ++S) {
    if (M.IsGrid) {
      if (StatusVec[S] == rt::StrandStatus::Dead ||
          StatusVec[S] == rt::StrandStatus::Faulted) {
        for (int K = 0; K < NComp; ++K)
          Data.push_back(0.0);
        continue;
      }
    } else if (StatusVec[S] != rt::StrandStatus::Stable) {
      continue;
    }
    const RtVal &V = States[S][StateIdx];
    if (std::holds_alternative<int64_t>(V))
      Data.push_back(static_cast<double>(vInt(V)));
    else
      for (int K = 0; K < vTensor(V).numComponents(); ++K)
        Data.push_back(vTensor(V)[K]);
  }
  return Status::ok();
}

} // namespace

Result<std::unique_ptr<rt::ProgramInstance>> makeInstance(ir::Module M) {
  if (M.CurLevel != ir::Mid)
    return Result<std::unique_ptr<rt::ProgramInstance>>::error(
        "the interpreter engine requires a MidIR module");
  std::unique_ptr<rt::ProgramInstance> P =
      std::make_unique<InterpInstance>(std::move(M));
  return P;
}

} // namespace diderot::interp

//===--- interp/interp.h - the MidIR interpreter engine ---------------------===//
//
// Part of the Diderot-C++ reproduction (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A direct evaluator for MidIR modules. It serves as the reference
/// semantics for the compiler: unit tests evaluate individual functions, and
/// the driver can select it as an execution engine (`Engine::Interp`) to run
/// whole programs without a host C++ compiler. The native engine is
/// differentially tested against it.
///
/// The interpreter always computes in double precision.
///
//===----------------------------------------------------------------------===//

#ifndef DIDEROT_INTERP_INTERP_H
#define DIDEROT_INTERP_INTERP_H

#include <memory>
#include <variant>

#include "image/image.h"
#include "ir/ir.h"
#include "runtime/host.h"

namespace diderot::interp {

/// A runtime value: bool, int, tensor (reals are scalar tensors), string, or
/// an image reference.
using RtVal = std::variant<std::monostate, bool, int64_t, Tensor, std::string,
                           std::shared_ptr<const Image>>;

/// Result of evaluating a function to an Exit.
struct CallResult {
  ir::ExitAttr::Kind Kind = ir::ExitAttr::Continue;
  std::vector<RtVal> Results;
};

/// Evaluate \p F (at MidIR level) on \p Args. \p Globals backs GlobalGet.
Result<CallResult> evalFunction(const ir::Function &F,
                                const std::vector<RtVal> &Args,
                                const std::vector<RtVal> &Globals);

/// Create an interpreter-backed instance of \p M (which must be at MidIR).
Result<std::unique_ptr<rt::ProgramInstance>> makeInstance(ir::Module M);

} // namespace diderot::interp

#endif // DIDEROT_INTERP_INTERP_H

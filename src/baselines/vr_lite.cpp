//===--- baselines/vr_lite.cpp - hand-coded simple volume renderer ----------===//
//
// The Teem-style version of the paper's vr-lite benchmark: a direct volume
// renderer with diffuse (Phong-style) shading driven by the scalar field's
// gradient. Compare with the Diderot version in bench/programs/vr_lite.diderot
// (Figure 1 of the paper).
//
//===----------------------------------------------------------------------===//

#include <cmath>

#include "baselines/baselines.h"
#include "teem/probe.h"

namespace diderot::baselines {

GrayImage vrLite(const Image &Vol, const VrParams &P) {
  GrayImage Out;
  Out.W = P.ResU;
  Out.H = P.ResV;
  Out.Pix.assign(static_cast<size_t>(P.ResU * P.ResV), 0.0);

  // Probe-context setup: kernels, query, buffer allocation.
  teem::ProbeCtx Ctx(Vol);
  Ctx.setKernel(0, teem::kernelBspln3(0));
  Ctx.setKernel(1, teem::kernelBspln3(1));
  Ctx.setQuery(teem::ItemValue | teem::ItemGradient);
  Ctx.update();

  // BEGIN CORE
  for (int R = 0; R < P.ResV; ++R) {
    for (int C = 0; C < P.ResU; ++C) {
      double Pos[3], Dir[3];
      for (int K = 0; K < 3; ++K)
        Pos[K] = P.Orig[K] + R * P.RVec[K] + C * P.CVec[K];
      double Len = 0.0;
      for (int K = 0; K < 3; ++K) {
        Dir[K] = Pos[K] - P.Eye[K];
        Len += Dir[K] * Dir[K];
      }
      Len = std::sqrt(Len);
      for (int K = 0; K < 3; ++K)
        Dir[K] /= Len;
      double Transp = 1.0;
      double Gray = 0.0;
      // March exactly as the Diderot strand does: step, probe, then test
      // the distance limit.
      double T = 0.0;
      for (;;) {
        for (int K = 0; K < 3; ++K)
          Pos[K] += P.StepSz * Dir[K];
        T += P.StepSz;
        if (Ctx.probe(Pos)) {
          double Val = Ctx.value()[0];
          if (Val > P.OpacMin) {
            double Opac = Val > P.OpacMax
                              ? 1.0
                              : (Val - P.OpacMin) / (P.OpacMax - P.OpacMin);
            const double *G = Ctx.gradient();
            double GLen =
                std::sqrt(G[0] * G[0] + G[1] * G[1] + G[2] * G[2]);
            double Diffuse = 0.0;
            if (GLen > 0.0)
              Diffuse =
                  (Dir[0] * G[0] + Dir[1] * G[1] + Dir[2] * G[2]) / GLen;
            if (Diffuse < 0.0)
              Diffuse = 0.0;
            Gray += Transp * Opac * Diffuse;
            Transp *= 1.0 - Opac;
          }
        }
        if (T > P.MaxT)
          break;
      }
      Out.Pix[static_cast<size_t>(R * P.ResU + C)] = Gray;
    }
  }
  // END CORE
  return Out;
}

} // namespace diderot::baselines

//===--- baselines/ridge3d.cpp - hand-coded particle ridge detection --------===//
//
// The Teem-style version of the paper's ridge3d benchmark: "an initial
// uniform distribution of points within a portion of a CT scan of a lung is
// moved iteratively towards the centers of blood vessels, using Newton
// optimization to compute ridge lines. This program computes the eigenvalues
// and eigenvectors of the Hessian."
//
//===----------------------------------------------------------------------===//

#include <cmath>

#include "baselines/baselines.h"
#include "teem/probe.h"
#include "tensor/eigen_raw.h"

namespace diderot::baselines {

std::vector<std::array<double, 3>> ridge3d(const Image &Vol,
                                           const RidgeParams &P) {
  std::vector<std::array<double, 3>> Out;

  teem::ProbeCtx Ctx(Vol);
  Ctx.setKernel(0, teem::kernelBspln3(0));
  Ctx.setKernel(1, teem::kernelBspln3(1));
  Ctx.setKernel(2, teem::kernelBspln3(2));
  Ctx.setQuery(teem::ItemGradient | teem::ItemHessian);
  Ctx.update();

  // BEGIN CORE
  for (int Xi = 0; Xi < P.Res; ++Xi) {
    for (int Yi = 0; Yi < P.Res; ++Yi) {
      for (int Zi = 0; Zi < P.Res; ++Zi) {
        double Pos[3] = {P.Lo + (P.Hi - P.Lo) * Xi / (P.Res - 1),
                         P.Lo + (P.Hi - P.Lo) * Yi / (P.Res - 1),
                         P.Lo + (P.Hi - P.Lo) * Zi / (P.Res - 1)};
        bool Alive = true;
        bool Converged = false;
        for (int Step = 0; Step <= P.StepsMax && Alive && !Converged;
             ++Step) {
          if (!Ctx.probe(Pos)) {
            Alive = false;
            break;
          }
          const double *G = Ctx.gradient();
          const double *H = Ctx.hessian();
          double L[3], V[9];
          eigensystemSym3(H, L, V);
          // Ridge line requires two strongly negative curvatures.
          if (L[1] > -P.Strength) {
            Alive = false;
            break;
          }
          // Newton step restricted to the two most-negative eigenvectors.
          const double *E1 = V + 3, *E2 = V + 6;
          double C1 = (E1[0] * G[0] + E1[1] * G[1] + E1[2] * G[2]) / L[1];
          double C2 = (E2[0] * G[0] + E2[1] * G[1] + E2[2] * G[2]) / L[2];
          double Delta[3];
          for (int K = 0; K < 3; ++K)
            Delta[K] = -C1 * E1[K] - C2 * E2[K];
          double DLen = std::sqrt(Delta[0] * Delta[0] + Delta[1] * Delta[1] +
                                  Delta[2] * Delta[2]);
          if (DLen < P.Epsilon) {
            Converged = true;
            break;
          }
          if (DLen > P.MaxStep)
            for (int K = 0; K < 3; ++K)
              Delta[K] *= P.MaxStep / DLen;
          for (int K = 0; K < 3; ++K)
            Pos[K] += Delta[K];
        }
        if (Converged)
          Out.push_back({Pos[0], Pos[1], Pos[2]});
      }
    }
  }
  // END CORE
  return Out;
}

} // namespace diderot::baselines

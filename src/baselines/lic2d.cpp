//===--- baselines/lic2d.cpp - hand-coded line integral convolution ---------===//
//
// The Teem-style version of the paper's lic2d benchmark (Figure 5): blur a
// noise texture along streamlines of a 2-D vector field, integrating with
// the midpoint method and modulating contrast by the seed-point speed.
//
//===----------------------------------------------------------------------===//

#include <cmath>

#include "baselines/baselines.h"
#include "teem/probe.h"

namespace diderot::baselines {

GrayImage lic2d(const Image &Vecs, const Image &Noise, const LicParams &P) {
  GrayImage Out;
  Out.W = P.ResU;
  Out.H = P.ResV;
  Out.Pix.assign(static_cast<size_t>(P.ResU * P.ResV), 0.0);

  teem::ProbeCtx VCtx(Vecs);
  VCtx.setKernel(0, teem::kernelCtmr(0));
  VCtx.setQuery(teem::ItemValue);
  VCtx.update();

  teem::ProbeCtx RCtx(Noise);
  RCtx.setKernel(0, teem::kernelTent(0));
  RCtx.setQuery(teem::ItemValue);
  RCtx.update();

  // BEGIN CORE
  for (int Vi = 0; Vi < P.ResV; ++Vi) {
    for (int Ui = 0; Ui < P.ResU; ++Ui) {
      double Pos0[2] = {P.Lo + (P.Hi - P.Lo) * Ui / (P.ResU - 1),
                        P.Lo + (P.Hi - P.Lo) * Vi / (P.ResV - 1)};
      double Forw[2] = {Pos0[0], Pos0[1]};
      double Back[2] = {Pos0[0], Pos0[1]};
      double Sum = RCtx.probe(Pos0) ? RCtx.value()[0] : 0.0;
      for (int Step = 0; Step < P.StepNum; ++Step) {
        // Midpoint (2nd-order Runge-Kutta) steps, forward and backward.
        double Mid[2], Vel[2] = {0, 0};
        if (VCtx.probe(Forw)) {
          Vel[0] = VCtx.value()[0];
          Vel[1] = VCtx.value()[1];
        }
        Mid[0] = Forw[0] + 0.5 * P.H * Vel[0];
        Mid[1] = Forw[1] + 0.5 * P.H * Vel[1];
        if (VCtx.probe(Mid)) {
          Forw[0] += P.H * VCtx.value()[0];
          Forw[1] += P.H * VCtx.value()[1];
        }
        Vel[0] = Vel[1] = 0;
        if (VCtx.probe(Back)) {
          Vel[0] = VCtx.value()[0];
          Vel[1] = VCtx.value()[1];
        }
        Mid[0] = Back[0] - 0.5 * P.H * Vel[0];
        Mid[1] = Back[1] - 0.5 * P.H * Vel[1];
        if (VCtx.probe(Mid)) {
          Back[0] -= P.H * VCtx.value()[0];
          Back[1] -= P.H * VCtx.value()[1];
        }
        if (RCtx.probe(Forw))
          Sum += RCtx.value()[0];
        if (RCtx.probe(Back))
          Sum += RCtx.value()[0];
      }
      // Contrast modulated by the seed-point speed.
      double Speed = 0.0;
      if (VCtx.probe(Pos0)) {
        double VX = VCtx.value()[0], VY = VCtx.value()[1];
        Speed = std::sqrt(VX * VX + VY * VY);
      }
      Sum *= Speed / (1.0 + 2.0 * P.StepNum);
      Out.Pix[static_cast<size_t>(Vi * P.ResU + Ui)] = Sum;
    }
  }
  // END CORE
  return Out;
}

} // namespace diderot::baselines

//===--- baselines/baselines.h - hand-coded benchmark baselines -------------===//
//
// Part of the Diderot-C++ reproduction (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-written C-style implementations of the paper's four benchmark
/// programs (Section 6.2) against the Teem-style probing library — the
/// "Teem" column of Tables 1 and 2. Each is written the way the paper
/// describes Teem usage: create a probe context, set kernels, declare the
/// query, update the context, then probe in a tight loop, copying answers
/// out of the probe buffers. Sequential only (the paper's Teem column has a
/// single configuration).
///
/// The `// BEGIN CORE` / `// END CORE` markers in the .cpp files delimit the
/// computational core counted in Table 1's "core" lines-of-code column.
///
//===----------------------------------------------------------------------===//

#ifndef DIDEROT_BASELINES_BASELINES_H
#define DIDEROT_BASELINES_BASELINES_H

#include <array>
#include <vector>

#include "image/image.h"

namespace diderot::baselines {

/// Shared camera / ray setup for the volume-rendering benchmarks. The
/// viewing geometry looks down -z at the synthetic hand volume.
struct VrParams {
  int ResU = 200;
  int ResV = 150;
  double StepSz = 0.03;
  double MaxT = 8.0;
  double Eye[3] = {0.0, 0.1, 6.0};
  double Orig[3] = {-0.36, -0.17, 4.0}; ///< pixel (0,0) position
  double CVec[3] = {0.0036, 0.0, 0.0};  ///< column step (scaled by 200/ResU)
  double RVec[3] = {0.0, 0.0036, 0.0};  ///< row step (scaled by 150/ResV)
  double OpacMin = 0.25;
  double OpacMax = 0.65;

  /// Rescale the pixel steps so the view frustum is resolution-independent.
  void scaleToResolution() {
    double SU = 200.0 / ResU, SV = 150.0 / ResV;
    for (int K = 0; K < 3; ++K) {
      CVec[K] *= SU;
      RVec[K] *= SV;
    }
  }
};

/// Grayscale output image, row-major, ResV rows by ResU columns.
struct GrayImage {
  int W = 0, H = 0;
  std::vector<double> Pix;
};

/// RGB output image, row-major, 3 components per pixel.
struct RgbImage {
  int W = 0, H = 0;
  std::vector<double> Pix;
};

/// vr-lite: "Simple volume-renderer with Phong shading" (diffuse term).
GrayImage vrLite(const Image &Vol, const VrParams &P);

/// illust-vr: "Fancy volume-renderer with cartoon shading" using the
/// curvature-based transfer function of Figure 3; \p Xfer is the 2-D RGB
/// colormap image indexed by (kappa1, kappa2).
RgbImage illustVr(const Image &Vol, const Image &Xfer, const VrParams &P);

struct LicParams {
  int ResU = 300;
  int ResV = 300;
  int StepNum = 12;
  double H = 0.01;
  double Lo = -0.85, Hi = 0.85; ///< world extent of the output grid
};

/// lic2d: line integral convolution of \p Vecs over noise texture \p Noise.
GrayImage lic2d(const Image &Vecs, const Image &Noise, const LicParams &P);

struct RidgeParams {
  int Res = 24; ///< initial points per axis (Res^3 strands)
  int StepsMax = 30;
  double Epsilon = 1e-4;
  double Strength = 0.1; ///< required -lambda2 ridge strength
  double Lo = -0.7, Hi = 0.7;
  double MaxStep = 0.05;
};

/// ridge3d: particle-based ridge (vessel centerline) detection; returns the
/// converged particle positions.
std::vector<std::array<double, 3>> ridge3d(const Image &Vol,
                                           const RidgeParams &P);

} // namespace diderot::baselines

#endif // DIDEROT_BASELINES_BASELINES_H

//===--- baselines/illust_vr.cpp - hand-coded curvature volume renderer -----===//
//
// The Teem-style version of the paper's illust-vr benchmark: a volume
// renderer whose color comes from the curvature-based transfer function of
// Figure 3 ("various curvature computations based on the gradient and
// Hessian... the tensor calculations that are awkward to express in other
// languages" — exactly the point this hand-written version demonstrates).
//
//===----------------------------------------------------------------------===//

#include <cmath>

#include "baselines/baselines.h"
#include "teem/probe.h"

namespace diderot::baselines {

RgbImage illustVr(const Image &Vol, const Image &Xfer, const VrParams &P) {
  RgbImage Out;
  Out.W = P.ResU;
  Out.H = P.ResV;
  Out.Pix.assign(static_cast<size_t>(3 * P.ResU * P.ResV), 0.0);

  teem::ProbeCtx Ctx(Vol);
  Ctx.setKernel(0, teem::kernelBspln3(0));
  Ctx.setKernel(1, teem::kernelBspln3(1));
  Ctx.setKernel(2, teem::kernelBspln3(2));
  Ctx.setQuery(teem::ItemValue | teem::ItemGradient | teem::ItemHessian);
  Ctx.update();

  // A second probe context for the 2-D RGB colormap.
  teem::ProbeCtx Map(Xfer);
  Map.setKernel(0, teem::kernelTent(0));
  Map.setQuery(teem::ItemValue);
  Map.update();

  double Iso = 0.5 * (P.OpacMin + P.OpacMax);

  // BEGIN CORE
  for (int R = 0; R < P.ResV; ++R) {
    for (int C = 0; C < P.ResU; ++C) {
      double Pos[3], Dir[3];
      for (int K = 0; K < 3; ++K)
        Pos[K] = P.Orig[K] + R * P.RVec[K] + C * P.CVec[K];
      double Len = 0.0;
      for (int K = 0; K < 3; ++K) {
        Dir[K] = Pos[K] - P.Eye[K];
        Len += Dir[K] * Dir[K];
      }
      Len = std::sqrt(Len);
      for (int K = 0; K < 3; ++K)
        Dir[K] /= Len;
      double Transp = 1.0;
      double Rgb[3] = {0.0, 0.0, 0.0};
      double T = 0.0;
      for (;;) {
        for (int K = 0; K < 3; ++K)
          Pos[K] += P.StepSz * Dir[K];
        T += P.StepSz;
        if (Ctx.probe(Pos)) {
          double Val = Ctx.value()[0];
          if (Val > Iso) {
            const double *G = Ctx.gradient();
            const double *H = Ctx.hessian();
            double GLen =
                std::sqrt(G[0] * G[0] + G[1] * G[1] + G[2] * G[2]);
            if (GLen > 1e-12) {
              double N[3] = {G[0] / GLen, G[1] / GLen, G[2] / GLen};
              // P = I - n n^T; Gm = -(P H P)/|grad| (Figure 3).
              double Pm[9];
              for (int I = 0; I < 3; ++I)
                for (int J = 0; J < 3; ++J)
                  Pm[I * 3 + J] = (I == J ? 1.0 : 0.0) - N[I] * N[J];
              double HP[9] = {0}, PHP[9] = {0};
              for (int I = 0; I < 3; ++I)
                for (int J = 0; J < 3; ++J)
                  for (int K = 0; K < 3; ++K)
                    HP[I * 3 + J] += H[I * 3 + K] * Pm[K * 3 + J];
              for (int I = 0; I < 3; ++I)
                for (int J = 0; J < 3; ++J)
                  for (int K = 0; K < 3; ++K)
                    PHP[I * 3 + J] += Pm[I * 3 + K] * HP[K * 3 + J];
              double Gm[9];
              for (int I = 0; I < 9; ++I)
                Gm[I] = -PHP[I] / GLen;
              double TraceG = Gm[0] + Gm[4] + Gm[8];
              double FrobSq = 0.0;
              for (int I = 0; I < 9; ++I)
                FrobSq += Gm[I] * Gm[I];
              double Disc =
                  std::sqrt(std::fmax(0.0, 2.0 * FrobSq - TraceG * TraceG));
              double K1 = (TraceG + Disc) / 2.0;
              double K2 = (TraceG - Disc) / 2.0;
              // Sample the (k1, k2) colormap with bilinear interpolation.
              // Clamp strictly inside the colormap so the tent support fits.
              double U[2] = {std::fmax(-0.95, std::fmin(0.95, 6.0 * K1)),
                             std::fmax(-0.95, std::fmin(0.95, 6.0 * K2))};
              double Mat[3] = {0.7, 0.7, 0.7};
              if (Map.probe(U)) {
                Mat[0] = Map.value()[0];
                Mat[1] = Map.value()[1];
                Mat[2] = Map.value()[2];
              }
              double Opac = 0.8;
              for (int K = 0; K < 3; ++K)
                Rgb[K] += Transp * Opac * Mat[K];
              Transp *= 1.0 - Opac;
            }
          }
        }
        if (T > P.MaxT)
          break;
      }
      for (int K = 0; K < 3; ++K)
        Out.Pix[static_cast<size_t>((R * P.ResU + C) * 3 + K)] = Rgb[K];
    }
  }
  // END CORE
  return Out;
}

} // namespace diderot::baselines

//===--- teem/kernels.cpp - callback kernels for the baseline --------------===//
//
// Hand-written kernel evaluation callbacks in the style of Teem's NrrdKernel
// objects (branchy piecewise formulas, evaluated one position at a time
// through a function pointer). Independent of src/kernels so the baseline
// and the compiler cannot share bugs.
//
//===----------------------------------------------------------------------===//

#include "teem/probe.h"

#include <cmath>

namespace diderot::teem {

namespace {

double tent0(double X, const void *) {
  X = std::abs(X);
  return X < 1.0 ? 1.0 - X : 0.0;
}

double tent1(double X, const void *) {
  if (X <= -1.0 || X >= 1.0)
    return 0.0;
  return X < 0.0 ? 1.0 : -1.0;
}

double tent2(double, const void *) { return 0.0; }

double ctmr0(double X, const void *) {
  double A = std::abs(X);
  if (A < 1.0)
    return 1.0 + A * A * (-2.5 + 1.5 * A);
  if (A < 2.0)
    return 2.0 + A * (-4.0 + A * (2.5 - 0.5 * A));
  return 0.0;
}

double ctmr1(double X, const void *) {
  double A = std::abs(X);
  double S = X < 0.0 ? -1.0 : 1.0;
  if (A < 1.0)
    return S * A * (-5.0 + 4.5 * A);
  if (A < 2.0)
    return S * (-4.0 + A * (5.0 - 1.5 * A));
  return 0.0;
}

double ctmr2(double X, const void *) {
  double A = std::abs(X);
  if (A < 1.0)
    return -5.0 + 9.0 * A;
  if (A < 2.0)
    return 5.0 - 3.0 * A;
  return 0.0;
}

double bspln30(double X, const void *) {
  double A = std::abs(X);
  if (A < 1.0)
    return 2.0 / 3.0 + A * A * (-1.0 + 0.5 * A);
  if (A < 2.0) {
    double T = 2.0 - A;
    return T * T * T / 6.0;
  }
  return 0.0;
}

double bspln31(double X, const void *) {
  double A = std::abs(X);
  double S = X < 0.0 ? -1.0 : 1.0;
  if (A < 1.0)
    return S * A * (-2.0 + 1.5 * A);
  if (A < 2.0) {
    double T = 2.0 - A;
    return S * (-0.5) * T * T;
  }
  return 0.0;
}

double bspln32(double X, const void *) {
  double A = std::abs(X);
  if (A < 1.0)
    return -2.0 + 3.0 * A;
  if (A < 2.0)
    return 2.0 - A;
  return 0.0;
}

} // namespace

ProbeKernel kernelTent(int DerivLevel) {
  switch (DerivLevel) {
  case 0:
    return {1, tent0, nullptr};
  case 1:
    return {1, tent1, nullptr};
  default:
    return {1, tent2, nullptr};
  }
}

ProbeKernel kernelCtmr(int DerivLevel) {
  switch (DerivLevel) {
  case 0:
    return {2, ctmr0, nullptr};
  case 1:
    return {2, ctmr1, nullptr};
  default:
    return {2, ctmr2, nullptr};
  }
}

ProbeKernel kernelBspln3(int DerivLevel) {
  switch (DerivLevel) {
  case 0:
    return {2, bspln30, nullptr};
  case 1:
    return {2, bspln31, nullptr};
  default:
    return {2, bspln32, nullptr};
  }
}

} // namespace diderot::teem

//===--- teem/probe.h - a Teem/gage-style probing library ------------------===//
//
// Part of the Diderot-C++ reproduction (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The baseline library the paper compares against. Teem's gage probes
/// convolution-based reconstructions through a *probe context*: "A Teem
/// programmer would have to create a probing context in which image data and
/// kernels are set, specify the list of all quantities that are to be
/// computed for every probe, and then update the probe context to allocate
/// buffers to store probe results. After calling the probe function at a
/// particular location pos, the programmer then copies the value and gradient
/// out of the probe buffer." (Section 7.)
///
/// This reimplementation deliberately preserves the two architectural
/// properties the paper identifies as the source of Teem's overhead
/// (Section 6.3): kernels are invoked through *function-pointer callbacks*,
/// and all internal arithmetic is *double precision* regardless of the data.
/// It is generic over image dimension and value components via runtime
/// loops, the way a C library must be — in contrast to the Diderot compiler,
/// which unrolls and specializes every probe.
///
//===----------------------------------------------------------------------===//

#ifndef DIDEROT_TEEM_PROBE_H
#define DIDEROT_TEEM_PROBE_H

#include <vector>

#include "image/image.h"

namespace diderot::teem {

/// A reconstruction kernel as gage sees it: a support radius and an
/// evaluation callback. \p Parm is an opaque kernel parameter block.
struct ProbeKernel {
  int Support = 0;
  double (*Eval)(double X, const void *Parm) = nullptr;
  const void *Parm = nullptr;
};

/// Built-in kernel callbacks; \p DerivLevel in 0..2 selects h, h', or h''.
ProbeKernel kernelTent(int DerivLevel);
ProbeKernel kernelCtmr(int DerivLevel);
ProbeKernel kernelBspln3(int DerivLevel);

/// Probe items, or-able into a query mask.
enum Item : unsigned {
  ItemValue = 1u << 0,    ///< reconstructed value (NComp doubles)
  ItemGradient = 1u << 1, ///< world-space gradient (NComp x d doubles)
  ItemHessian = 1u << 2,  ///< world-space Hessian (NComp x d x d doubles)
};

/// A gage-style probe context bound to one image.
class ProbeCtx {
public:
  /// The context keeps a pointer to \p Img; the image must outlive it.
  explicit ProbeCtx(const Image &Img);

  /// Set the kernel used for reconstruction at derivative level
  /// \p DerivLevel (0 = values, 1 = first derivatives, 2 = second).
  void setKernel(int DerivLevel, ProbeKernel K);

  /// Declare which items every probe must compute.
  void setQuery(unsigned ItemMask);

  /// Allocate answer buffers; call after setKernel/setQuery and before the
  /// first probe (mirrors gageUpdate).
  void update();

  /// Probe at a world-space position (dim() doubles). Returns false (leaving
  /// the answers unchanged) when the kernel support spills outside the grid.
  bool probe(const double *WorldPos);

  /// Convenience for 3-D images.
  bool probe3(double X, double Y, double Z) {
    double P[3] = {X, Y, Z};
    return probe(P);
  }
  /// Convenience for 2-D images.
  bool probe2(double X, double Y) {
    double P[2] = {X, Y};
    return probe(P);
  }

  /// Answer buffers, valid after a successful probe.
  const double *value() const { return AnsValue.data(); }
  const double *gradient() const { return AnsGrad.data(); }
  const double *hessian() const { return AnsHess.data(); }

  int dim() const { return D; }
  int numComponents() const { return NComp; }

private:
  const Image &Img;
  int D;
  int NComp;
  unsigned Query = 0;
  ProbeKernel Kernels[3];
  int MaxSupport = 0;
  int MaxDeriv = 0;

  // Scratch: per-axis, per-derivative-level tap weights, the gathered
  // sample window, and the stacked-contraction intermediates.
  std::vector<double> Weights; // [axis][level][tap]
  std::vector<double> Window;  // [tap_z][tap_y][tap_x][comp]
  std::vector<double> Scratch, Scratch2;
  std::vector<double> AnsValue, AnsGrad, AnsHess;
  std::vector<double> IdxGrad, IdxHess; // index-space scratch

  // Raw image layout cached at update().
  const double *RawData = nullptr;
  long CompStride = 1;
  long AxisSize[3] = {1, 1, 1};
  long AxisStride[3] = {1, 1, 1};
};

} // namespace diderot::teem

#endif // DIDEROT_TEEM_PROBE_H

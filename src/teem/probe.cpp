//===--- teem/probe.cpp ----------------------------------------------------===//
//
// The probe evaluation mirrors gage's structure: a "filter sample" stage
// evaluates every needed kernel level at every tap of every axis through
// function-pointer callbacks, then the separable convolution is computed as
// stacked 1-D contractions (x, then y, then z), producing all queried
// derivative-level combinations at once. Internal arithmetic is double
// precision throughout, as in Teem.
//
//===----------------------------------------------------------------------===//

#include "teem/probe.h"

#include <cassert>
#include <cmath>
#include <cstring>

namespace diderot::teem {

ProbeCtx::ProbeCtx(const Image &Img)
    : Img(Img), D(Img.dim()), NComp(Img.numComponents()) {
  Kernels[0] = kernelTent(0);
  Kernels[1] = kernelTent(1);
  Kernels[2] = kernelTent(2);
}

void ProbeCtx::setKernel(int DerivLevel, ProbeKernel K) {
  assert(DerivLevel >= 0 && DerivLevel <= 2);
  Kernels[DerivLevel] = K;
}

void ProbeCtx::setQuery(unsigned ItemMask) { Query = ItemMask; }

void ProbeCtx::update() {
  MaxDeriv = 0;
  if (Query & ItemGradient)
    MaxDeriv = 1;
  if (Query & ItemHessian)
    MaxDeriv = 2;
  MaxSupport = 0;
  for (int L = 0; L <= MaxDeriv; ++L)
    MaxSupport = std::max(MaxSupport, Kernels[L].Support);
  int Taps = 2 * MaxSupport;
  int Levels = MaxDeriv + 1;
  Weights.assign(static_cast<size_t>(D * Levels * Taps), 0.0);

  // Window and the intermediate contraction buffers: processing axis a
  // turns a taps dimension into a levels dimension.
  size_t MaxBuf = static_cast<size_t>(NComp);
  size_t WinSize = static_cast<size_t>(NComp);
  for (int A = 0; A < D; ++A)
    WinSize *= static_cast<size_t>(Taps);
  MaxBuf = WinSize;
  for (int A = 1; A < D; ++A) {
    size_t S = static_cast<size_t>(NComp);
    for (int K = 0; K < A; ++K)
      S *= static_cast<size_t>(Levels);
    for (int K = A; K < D; ++K)
      S *= static_cast<size_t>(Taps);
    MaxBuf = std::max(MaxBuf, S);
  }
  Window.assign(WinSize, 0.0);
  Scratch.assign(MaxBuf, 0.0);
  Scratch2.assign(MaxBuf, 0.0);
  AnsValue.assign(static_cast<size_t>(NComp), 0.0);
  AnsGrad.assign(static_cast<size_t>(NComp * D), 0.0);
  AnsHess.assign(static_cast<size_t>(NComp * D * D), 0.0);
  IdxGrad.assign(AnsGrad.size(), 0.0);
  IdxHess.assign(AnsHess.size(), 0.0);

  // Cache raw image layout for the gather stage.
  RawData = Img.data().data();
  CompStride = NComp;
  for (int A = 0; A < D; ++A) {
    AxisSize[A] = Img.size(A);
    AxisStride[A] = (A == 0 ? static_cast<long>(NComp)
                            : AxisStride[A - 1] * AxisSize[A - 1]);
  }
}

bool ProbeCtx::probe(const double *WorldPos) {
  assert(!Window.empty() && "call update() before probing");
  const int S = MaxSupport;
  const int Taps = 2 * S;
  const int Levels = MaxDeriv + 1;

  // World -> index.
  double Xi[3], Frac[3];
  long Base[3];
  Img.worldToIndex(WorldPos, Xi);
  for (int A = 0; A < D; ++A) {
    double N = std::floor(Xi[A]);
    Base[A] = static_cast<long>(N);
    Frac[A] = Xi[A] - N;
    if (Base[A] + 1 - S < 0 || Base[A] + S > AxisSize[A] - 1)
      return false;
  }

  // Filter-sample stage: evaluate every kernel level at every tap of every
  // axis through the callbacks (this is where gage pays its callback cost).
  for (int A = 0; A < D; ++A)
    for (int L = 0; L < Levels; ++L) {
      const ProbeKernel &K = Kernels[L];
      double *W = &Weights[static_cast<size_t>((A * Levels + L) * Taps)];
      for (int T = 0; T < Taps; ++T) {
        int Off = T + 1 - S;
        W[T] = (Off >= 1 - K.Support && Off <= K.Support)
                   ? K.Eval(Frac[A] - Off, K.Parm)
                   : 0.0;
      }
    }

  // Gather the (Taps^D) sample window with direct addressing (the inside
  // test above guarantees every tap is in bounds). Window layout: component
  // fastest, then x, then y, then z — i.e. axis 0's taps vary fastest so the
  // first contraction reads contiguously.
  {
    double *W = Window.data();
    if (D == 3) {
      for (int TZ = 0; TZ < Taps; ++TZ)
        for (int TY = 0; TY < Taps; ++TY) {
          const double *Src = RawData + (Base[0] + 1 - S) * AxisStride[0] +
                              (Base[1] + TY + 1 - S) * AxisStride[1] +
                              (Base[2] + TZ + 1 - S) * AxisStride[2];
          std::memcpy(W, Src,
                      sizeof(double) * static_cast<size_t>(Taps * NComp));
          W += Taps * NComp;
        }
    } else if (D == 2) {
      for (int TY = 0; TY < Taps; ++TY) {
        const double *Src = RawData + (Base[0] + 1 - S) * AxisStride[0] +
                            (Base[1] + TY + 1 - S) * AxisStride[1];
        std::memcpy(W, Src,
                    sizeof(double) * static_cast<size_t>(Taps * NComp));
        W += Taps * NComp;
      }
    } else {
      const double *Src = RawData + (Base[0] + 1 - S) * AxisStride[0];
      std::memcpy(W, Src,
                  sizeof(double) * static_cast<size_t>(Taps * NComp));
    }
  }

  // Stacked 1-D contractions: axis 0 first. The buffer before processing
  // axis A is indexed [suffix-taps (slow, axes D-1..A+1)] [tap_A] [done-level
  // combos][comp]; contracting axis A replaces tap_A by a level dimension.
  //
  // Concretely we keep layout: Buf[(outer)(tap_A)(inner)] with inner =
  // (levels^A * NComp) and outer = Taps^(D-1-A), and produce
  // Out[(outer)(L)(inner)].
  const double *Cur = Window.data();
  double *Out = Scratch.data();
  double *Next = Scratch2.data();
  long Inner = CompStride; // NComp
  long Outer = 1;
  for (int A = 1; A < D; ++A)
    Outer *= Taps;
  for (int A = 0; A < D; ++A) {
    const double *W = &Weights[static_cast<size_t>(A * Levels * Taps)];
    for (long O = 0; O < Outer; ++O) {
      const double *Slab = Cur + O * Taps * Inner;
      double *Dst = Out + O * Levels * Inner;
      for (int L = 0; L < Levels; ++L) {
        const double *WL = W + L * Taps;
        double *DL = Dst + L * Inner;
        for (long I = 0; I < Inner; ++I)
          DL[I] = 0.0;
        for (int T = 0; T < Taps; ++T) {
          double WT = WL[T];
          const double *ST = Slab + T * Inner;
          for (long I = 0; I < Inner; ++I)
            DL[I] += WT * ST[I];
        }
      }
    }
    Inner *= Levels;
    Outer /= Taps;
    Cur = Out;
    std::swap(Out, Next);
  }
  // Result layout: [L_{D-1}]...[L_1][L_0][comp].
  const double *Ans = Cur;
  auto AnsAt = [&](int L0, int L1, int L2, int C) {
    long Idx = 0;
    int Ls[3] = {L0, L1, L2};
    for (int A = D - 1; A >= 0; --A)
      Idx = Idx * Levels + Ls[A];
    return Ans[Idx * NComp + C];
  };

  for (int C = 0; C < NComp; ++C) {
    if (Query & ItemValue)
      AnsValue[static_cast<size_t>(C)] = AnsAt(0, 0, 0, C);
    if (Query & ItemGradient)
      for (int G = 0; G < D; ++G)
        IdxGrad[static_cast<size_t>(C * D + G)] =
            AnsAt(G == 0 ? 1 : 0, G == 1 ? 1 : 0, G == 2 ? 1 : 0, C);
    if (Query & ItemHessian)
      for (int G1 = 0; G1 < D; ++G1)
        for (int G2 = 0; G2 < D; ++G2) {
          int Ls[3] = {0, 0, 0};
          Ls[G1] += 1;
          Ls[G2] += 1;
          IdxHess[static_cast<size_t>((C * D + G1) * D + G2)] =
              AnsAt(Ls[0], Ls[1], Ls[2], C);
        }
  }

  // Transform covariant quantities to world space: g_w = M^{-T} g_i,
  // H_w = M^{-T} H_i M^{-1}.
  const std::vector<double> &MIT = Img.gradientTransform();
  const std::vector<double> &MI = Img.worldToIndexMatrix();
  if (Query & ItemGradient) {
    for (int C = 0; C < NComp; ++C)
      for (int R = 0; R < D; ++R) {
        double Acc = 0.0;
        for (int K = 0; K < D; ++K)
          Acc += MIT[static_cast<size_t>(R * D + K)] *
                 IdxGrad[static_cast<size_t>(C * D + K)];
        AnsGrad[static_cast<size_t>(C * D + R)] = Acc;
      }
  }
  if (Query & ItemHessian) {
    for (int C = 0; C < NComp; ++C)
      for (int R = 0; R < D; ++R)
        for (int S2 = 0; S2 < D; ++S2) {
          double Acc = 0.0;
          for (int K = 0; K < D; ++K)
            for (int L = 0; L < D; ++L)
              Acc += MIT[static_cast<size_t>(R * D + K)] *
                     IdxHess[static_cast<size_t>((C * D + K) * D + L)] *
                     MI[static_cast<size_t>(L * D + S2)];
          AnsHess[static_cast<size_t>((C * D + R) * D + S2)] = Acc;
        }
  }
  return true;
}

} // namespace diderot::teem

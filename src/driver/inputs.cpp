//===--- driver/inputs.cpp - textual input binding shared by CLI and daemon --===//
//
// Part of the Diderot-C++ reproduction (PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "driver/inputs.h"

#include <cstdlib>
#include <vector>

#include "support/strings.h"
#include "synth/synth.h"

namespace diderot {

namespace {

Status setImageSpec(rt::ProgramInstance &I, const std::string &Name,
                    const std::string &Spec) {
  if (startsWith(Spec, "synth:")) {
    std::vector<std::string> Parts = splitString(Spec, ':');
    if (Parts.size() < 2)
      return Status::error("bad synth spec: " + Spec);
    int Size = Parts.size() >= 3 ? std::atoi(Parts[2].c_str()) : 32;
    Image Img;
    if (Parts[1] == "hand")
      Img = synth::ctHand(Size);
    else if (Parts[1] == "vessels")
      Img = synth::lungVessels(Size);
    else if (Parts[1] == "flow")
      Img = synth::flow2d(Size);
    else if (Parts[1] == "noise")
      Img = synth::noise2d(Size);
    else if (Parts[1] == "portrait")
      Img = synth::portrait(Size);
    else
      return Status::error("unknown synthetic dataset: " + Parts[1]);
    return I.setInputImage(Name, Img);
  }
  Result<Nrrd> N = nrrdRead(Spec);
  if (!N.isOk())
    return Status::error(N.message());
  // Try common dims/shapes until one matches the declared input type.
  for (int Dim = 1; Dim <= 3; ++Dim) {
    for (int Comp : {1, 2, 3, 4}) {
      Shape S = Comp == 1 ? Shape{} : Shape{Comp};
      Result<Image> Img = Image::fromNrrd(*N, Dim, S);
      if (Img.isOk() && I.setInputImage(Name, *Img).isOk())
        return Status::ok();
    }
  }
  return Status::error("NRRD does not match the input's image type: " + Spec);
}

} // namespace

Status setInputFromText(rt::ProgramInstance &I, const std::string &Name,
                        const std::string &Value) {
  std::string TypeName;
  for (const rt::InputDesc &D : I.inputs())
    if (D.Name == Name)
      TypeName = D.TypeName;
  if (TypeName.empty())
    return Status::error("no input named '" + Name + "'");
  if (startsWith(TypeName, "image"))
    return setImageSpec(I, Name, Value);
  if (TypeName == "int")
    return I.setInputInt(Name, std::atoll(Value.c_str()));
  if (TypeName == "bool")
    return I.setInputBool(Name, Value == "true" || Value == "1");
  if (TypeName == "string")
    return I.setInputString(Name, Value);
  if (TypeName == "real")
    return I.setInputReal(Name, std::atof(Value.c_str()));
  // tensor: comma-separated components
  std::vector<double> Comps;
  for (const std::string &P : splitString(Value, ','))
    Comps.push_back(std::atof(P.c_str()));
  return I.setInputTensor(Name, Comps);
}

Result<Nrrd> outputToNrrd(rt::ProgramInstance &I, const std::string &Name) {
  std::vector<rt::OutputDesc> Outs = I.outputs();
  if (Outs.empty())
    return Result<Nrrd>::error("program has no outputs");
  const rt::OutputDesc *Out = nullptr;
  if (Name.empty()) {
    Out = &Outs[0];
  } else {
    for (const rt::OutputDesc &D : Outs)
      if (D.Name == Name)
        Out = &D;
    if (!Out)
      return Result<Nrrd>::error("no output named '" + Name + "'");
  }
  std::vector<double> Data;
  Status S = I.getOutput(Out->Name, Data);
  if (!S.isOk())
    return Result<Nrrd>::error(S.message());
  Nrrd N;
  N.Type = NrrdType::Double;
  int Comps = Out->ValShape.numComponents();
  if (Comps > 1)
    N.Sizes.push_back(Comps);
  std::vector<int> Dims = I.outputDims();
  // Grid: first iterator is the slowest axis; NRRD wants fastest first.
  for (size_t K = Dims.size(); K-- > 0;)
    N.Sizes.push_back(Dims[K]);
  N.allocate();
  for (size_t K = 0; K < Data.size() && K < N.numSamples(); ++K)
    N.setSampleFromDouble(K, Data[K]);
  return N;
}

} // namespace diderot

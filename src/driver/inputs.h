//===--- driver/inputs.h - textual input binding shared by CLI and daemon ----===//
//
// Part of the Diderot-C++ reproduction (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// "The Diderot compiler synthesizes glue code that allows command-line
/// setting of input variables" (Section 3.3.1). This is that glue, factored
/// out of diderotc.cpp so the serve daemon can bind the same NAME=VALUE
/// texts arriving as X-Diderot-Input headers:
///
///  * scalars parse from their obvious text forms (int, real, bool's
///    "true"/"1", strings verbatim);
///  * tensors parse from comma-separated components;
///  * images accept either a .nrrd path or a synthetic dataset spec
///    `synth:GEN:SIZE` with GEN in {hand, vessels, flow, noise, portrait}
///    (see src/synth) — the form daemon clients should prefer, since it
///    names no files on the server.
///
/// Also hosts the inverse direction: packaging a finished instance's first
/// output as an Nrrd, shared by `diderotc --out` and the daemon's
/// `GET /jobs/<id>/output`.
///
//===----------------------------------------------------------------------===//

#ifndef DIDEROT_DRIVER_INPUTS_H
#define DIDEROT_DRIVER_INPUTS_H

#include <string>

#include "nrrd/nrrd.h"
#include "runtime/host.h"
#include "support/result.h"

namespace diderot {

/// Bind input \p Name of \p I from its textual \p Value, dispatching on the
/// input's declared type (image specs, scalars, tensors as described in the
/// file comment). Unknown input names and unparsable values are errors.
Status setInputFromText(rt::ProgramInstance &I, const std::string &Name,
                        const std::string &Value);

/// Package output \p Name (or the program's first output when \p Name is
/// empty) of the finished instance \p I as a double-typed Nrrd, components
/// fastest then grid axes fastest-to-slowest. Errors when the program has
/// no outputs or the read fails.
Result<Nrrd> outputToNrrd(rt::ProgramInstance &I, const std::string &Name = "");

} // namespace diderot

#endif // DIDEROT_DRIVER_INPUTS_H

//===--- driver/record.cpp - flight recorder and bundle replay ---------------===//

#include "driver/record.h"

#include <atomic>
#include <filesystem>
#include <fstream>

#ifndef _WIN32
#include <unistd.h>
#endif

#include "codegen/cache.h"
#include "driver/inputs.h"
#include "observe/fault.h"
#include "support/hash.h"
#include "support/strings.h"
#include "support/tarball.h"

namespace diderot {

namespace fs = std::filesystem;

namespace {

/// Canonical slot count of one strand value — the same rule the native
/// emitter (codegen/emit_cpp.cpp slotCount) and the interpreter's RtVal
/// flattening follow, so names line up with digested slots by construction.
int slotCountOf(const Type &T) {
  switch (T.kind()) {
  case TypeKind::Tensor:
    return T.shape().numComponents();
  case TypeKind::Sequence:
    return T.seqLen() * slotCountOf(T.elem());
  default:
    return 1;
  }
}

void appendSlotNames(const std::string &Base, const Type &T,
                     std::vector<std::string> &Out) {
  int N = slotCountOf(T);
  if (N == 1) {
    Out.push_back(Base);
    return;
  }
  for (int K = 0; K < N; ++K)
    Out.push_back(strf(Base, "[", K, "]"));
}

std::string readFileBytes(const std::string &Path, bool &Ok) {
  std::ifstream In(Path, std::ios::binary);
  Ok = static_cast<bool>(In);
  if (!Ok)
    return {};
  std::string Bytes((std::istreambuf_iterator<char>(In)),
                    std::istreambuf_iterator<char>());
  Ok = !In.bad();
  return Bytes;
}

} // namespace

std::vector<std::string> strandSlotNames(const ir::Module &M) {
  std::vector<std::string> Names;
  for (size_t I = 0; I < M.StrandParams.size(); ++I)
    appendSlotNames(strf("param", I), M.StrandParams[I], Names);
  for (const ir::StateSlot &S : M.State)
    appendSlotNames(S.Name, S.Ty, Names);
  return Names;
}

std::string outputDigestHex(rt::ProgramInstance &I) {
  observe::StrandStateHasher H;
  std::vector<double> Data;
  for (const rt::OutputDesc &O : I.outputs()) {
    Data.clear();
    if (!I.getOutput(O.Name, Data).isOk())
      continue;
    for (double V : Data)
      H.slot(V);
  }
  return H.digest().hex();
}

std::string currentGitSha() {
  std::error_code EC;
  fs::path P = fs::current_path(EC);
  if (EC)
    return {};
  for (;; P = P.parent_path()) {
    std::ifstream Head(P / ".git" / "HEAD");
    if (Head) {
      std::string Line;
      std::getline(Head, Line);
      if (!Line.starts_with("ref: "))
        return Line; // detached HEAD: the hash itself
      std::string Ref = Line.substr(5);
      std::ifstream RefIn(P / ".git" / Ref);
      std::string Sha;
      if (RefIn && std::getline(RefIn, Sha) && !Sha.empty())
        return Sha;
      // Ref may only exist packed.
      std::ifstream Packed(P / ".git" / "packed-refs");
      std::string L;
      while (Packed && std::getline(Packed, L))
        if (L.size() > 41 && L[40] == ' ' && L.substr(41) == Ref)
          return L.substr(0, 40);
      return {};
    }
    if (P == P.parent_path())
      return {};
  }
}

//===----------------------------------------------------------------------===//
// FlightRecorder
//===----------------------------------------------------------------------===//

void FlightRecorder::begin(std::string RecDir, const std::string &ProgramName,
                           std::string Source, const CompileOptions &Opts,
                           const ir::Module &Mid) {
  Dir = std::move(RecDir);
  B = observe::ReplayBundle{};
  Files.clear();
  B.Program = ProgramName;
  B.Source = std::move(Source);
  B.AbiVersion = codegen::DdrAbiVersion;
  B.CompilerId = codegen::hostCompilerId();
  B.GitSha = currentGitSha();
  B.EngineNative = Opts.Eng == Engine::Native;
  B.DoublePrecision = Opts.DoublePrecision;
  B.EnableContract = Opts.EnableContract;
  B.EnableValueNumbering = Opts.EnableValueNumbering;
  B.ExtraCxxFlags = Opts.ExtraCxxFlags;
  B.SlotNames = strandSlotNames(Mid);
}

Status FlightRecorder::addInput(const std::string &Name,
                                const std::string &Value) {
  observe::RecordedInput In;
  In.Name = Name;
  std::error_code EC;
  if (fs::is_regular_file(Value, EC)) {
    bool Ok = false;
    std::string Bytes = readFileBytes(Value, Ok);
    if (!Ok)
      return Status::error(strf("record: cannot read input file ", Value));
    std::string File =
        observe::bundleInputFile(support::fnv1a128(Bytes).hex());
    Files[File] = std::move(Bytes);
    In.Text = File;
    In.IsFile = true;
  } else {
    In.Text = Value;
  }
  B.Inputs.push_back(std::move(In));
  return Status::ok();
}

void FlightRecorder::armConfig(rt::RunConfig &C) {
  B.MaxSupersteps = C.MaxSupersteps;
  B.NumWorkers = C.NumWorkers;
  B.BlockSize = C.BlockSize;
  B.SchedulerName = rt::schedulerName(C.Sched);
  B.DeadlineNs = C.Policy.DeadlineNs;
  B.MaxFaults = C.Policy.MaxFaults;
  B.WatchdogSteps = C.Policy.WatchdogSteps;
  B.StrictFp = C.Policy.StrictFp;
  B.Plan.clear();
  for (const observe::PlannedFault &F : C.Policy.Plan.Faults)
    B.Plan.push_back({F.Strand, F.Step, static_cast<int>(F.Kind)});
  C.CollectDigests = true;
  C.CollectStateLog = true;
}

Status FlightRecorder::finish(rt::ProgramInstance &I,
                              const rt::RunStats &Stats) {
  if (Dir.empty())
    return Status::error("record: finish() without begin()");
  B.Outcome = observe::runOutcomeName(Stats.Outcome);
  B.Steps = Stats.Steps;
  B.NumStrands = static_cast<int64_t>(I.numStrands());
  B.OutputDigest = outputDigestHex(I);
  if (const observe::DigestLog *L = I.digestLog())
    B.Digests = *L; // absent on pre-v7 .so files: bundle degrades to
                    // outcome + final-output comparison
  else
    B.Digests.clear();
  return observe::writeBundle(Dir, B, Files);
}

Status FlightRecorder::finishTrapped(const std::string &OutcomeLabel) {
  if (Dir.empty())
    return Status::error("record: finishTrapped() without begin()");
  B.Outcome = OutcomeLabel;
  B.Steps = 0;
  B.NumStrands = 0;
  B.OutputDigest.clear();
  B.Digests.clear();
  return observe::writeBundle(Dir, B, Files);
}

//===----------------------------------------------------------------------===//
// Replay
//===----------------------------------------------------------------------===//

Result<observe::ReplayBundle> loadBundle(const std::string &Path,
                                         std::string *BundleDir) {
  using RB = Result<observe::ReplayBundle>;
  std::error_code EC;
  std::string Dir = Path;
  if (fs::is_regular_file(Path, EC)) {
    // A ustar archive of a bundle directory: materialize it.
    bool Ok = false;
    std::string Bytes = readFileBytes(Path, Ok);
    if (!Ok)
      return RB::error(strf("cannot read bundle archive ", Path));
    static std::atomic<uint64_t> Counter{0};
    long Pid =
#ifndef _WIN32
        static_cast<long>(::getpid());
#else
        0;
#endif
    fs::path Tmp = fs::temp_directory_path(EC);
    if (EC)
      return RB::error("cannot locate temp directory");
    Dir = (Tmp / strf("ddr-replay-", Pid, "-",
                      Counter.fetch_add(1, std::memory_order_relaxed)))
              .string();
    Status S = support::tarExtract(Bytes, Dir);
    if (!S.isOk())
      return RB::error(strf("bundle archive: ", S.message()));
  } else if (!fs::is_directory(Path, EC)) {
    return RB::error(strf("no bundle at ", Path));
  }
  if (BundleDir)
    *BundleDir = Dir;
  return observe::readBundle(Dir);
}

Result<ReplayReport> replayBundle(const std::string &Path,
                                  const std::string &WorkDir) {
  using RR = Result<ReplayReport>;
  std::string Dir;
  Result<observe::ReplayBundle> BR = loadBundle(Path, &Dir);
  if (!BR.isOk())
    return RR::error(BR.message());
  ReplayReport R;
  R.Bundle = std::move(*BR);
  const observe::ReplayBundle &B = R.Bundle;

  CompileOptions Opts;
  Opts.Eng = B.EngineNative ? Engine::Native : Engine::Interp;
  Opts.DoublePrecision = B.DoublePrecision;
  Opts.EnableContract = B.EnableContract;
  Opts.EnableValueNumbering = B.EnableValueNumbering;
  Opts.ExtraCxxFlags = B.ExtraCxxFlags;
  Opts.WorkDir = WorkDir;
  Result<CompiledProgram> CP = compileString(
      B.Source, Opts, B.Program.empty() ? "replay" : B.Program);
  if (!CP.isOk())
    return RR::error(strf("replay recompile failed: ", CP.message()));
  Result<std::unique_ptr<rt::ProgramInstance>> Inst = CP->instantiate();
  if (!Inst.isOk())
    return RR::error(Inst.message());
  rt::ProgramInstance &I = **Inst;

  for (const observe::RecordedInput &In : B.Inputs) {
    std::string Text =
        In.IsFile ? (fs::path(Dir) / In.Text).string() : In.Text;
    Status S = setInputFromText(I, In.Name, Text);
    if (!S.isOk())
      return RR::error(strf("replay input '", In.Name, "': ", S.message()));
  }
  Status S = I.initialize();
  if (!S.isOk())
    return RR::error(S.message());

  rt::RunConfig C;
  C.MaxSupersteps = B.MaxSupersteps;
  C.NumWorkers = B.NumWorkers;
  C.BlockSize = B.BlockSize;
  if (!rt::parseSchedulerName(B.SchedulerName, C.Sched))
    return RR::error(strf("bundle names unknown scheduler '", B.SchedulerName,
                          "'"));
  C.Policy.DeadlineNs = B.DeadlineNs;
  C.Policy.MaxFaults = B.MaxFaults;
  C.Policy.WatchdogSteps = B.WatchdogSteps;
  C.Policy.StrictFp = B.StrictFp;
  for (const observe::ReplayBundle::PlannedFaultRec &F : B.Plan)
    C.Policy.Plan.at(F.Strand, F.Step, static_cast<observe::FaultKind>(F.Kind));
  // A recorded deadline verdict raced a wall clock; replaying the race on a
  // different machine proves nothing. Replay step-capped to the recorded
  // superstep count and judge by state evolution instead.
  const bool WasDeadline = B.Outcome == "deadline";
  if (WasDeadline) {
    C.Policy.DeadlineNs = 0;
    C.MaxSupersteps = B.Steps;
  }
  C.CollectDigests = true;
  C.CollectStateLog = B.Digests.HasStates;

  Result<rt::RunStats> Run = I.run(C);
  if (!Run.isOk())
    return RR::error(Run.message());
  R.ReplayedOutcome = observe::runOutcomeName(Run->Outcome);
  R.ReplayedSteps = Run->Steps;
  R.ReplayedOutputDigest = outputDigestHex(I);
  R.OutcomeMatches = R.ReplayedOutcome == B.Outcome ||
                     (WasDeadline && R.ReplayedSteps == B.Steps);
  R.OutputMatches =
      B.OutputDigest.empty() || R.ReplayedOutputDigest == B.OutputDigest;

  const observe::DigestLog *L = I.digestLog();
  if (L && !L->Entries.empty() && !B.Digests.Entries.empty()) {
    R.DigestsCompared = true;
    R.Div = observe::diagnoseDivergence(B, *L);
  }
  R.Match = R.OutcomeMatches && R.OutputMatches &&
            (!R.DigestsCompared || !R.Div.Diverged);

  std::string T;
  T += strf("replay: program '", B.Program, "' recorded ", B.Outcome,
            " after ", B.Steps, " supersteps, ", B.NumStrands, " strands\n");
  T += strf("  engine ", B.EngineNative ? "native" : "interp", ", scheduler ",
            B.SchedulerName, ", workers ", B.NumWorkers, "\n");
  if (!B.GitSha.empty() || !B.CompilerId.empty())
    T += strf("  recorded by abi v", B.AbiVersion,
              B.GitSha.empty() ? "" : strf(", git ", B.GitSha.substr(0, 12)),
              "\n");
  T += strf("  outcome: replayed ", R.ReplayedOutcome, " after ",
            R.ReplayedSteps, " supersteps — ",
            R.OutcomeMatches ? "match" : "MISMATCH",
            WasDeadline && R.OutcomeMatches
                ? " (deadline replayed step-capped)"
                : "",
            "\n");
  if (R.DigestsCompared)
    T += strf("  digests: ", B.Digests.Entries.size(), " recorded / ",
              L->Entries.size(), " replayed — ",
              R.Div.Diverged ? "DIVERGED" : "identical", "\n");
  else
    T += "  digests: not compared (recording or engine lacks per-step "
         "digests)\n";
  if (R.Div.Diverged)
    T += strf("  ", R.Div.Summary, "\n");
  T += strf("  output: ",
            B.OutputDigest.empty()
                ? "not recorded"
                : (R.OutputMatches ? strf("match (", B.OutputDigest, ")")
                                   : strf("MISMATCH (recorded ", B.OutputDigest,
                                          ", replayed ",
                                          R.ReplayedOutputDigest, ")")),
            "\n");
  T += strf("  verdict: ", R.Match ? "MATCH" : "DIVERGENCE", "\n");
  R.Text = std::move(T);
  return R;
}

} // namespace diderot

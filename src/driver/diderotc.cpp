//===--- driver/diderotc.cpp - the Diderot compiler command-line tool --------===//
//
// Part of the Diderot-C++ reproduction (PLDI 2012).
//
// "The Diderot compiler synthesizes glue code that allows command-line
// setting of input variables" (Section 3.3.1): inputs are set with
// --input name=value; image inputs accept NRRD files or synthetic dataset
// specs (synth:hand:64 etc., see src/synth).
//
//===----------------------------------------------------------------------===//

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "driver/driver.h"
#include "driver/inputs.h"
#include "driver/record.h"
#include "nrrd/nrrd.h"
#include "observe/observe.h"
#include "support/log.h"
#include "support/strings.h"

using namespace diderot;

namespace {

void usage() {
  std::fprintf(stderr, R"(usage: diderotc [options] program.diderot

options:
  --engine=native|interp   execution engine (default native)
  --double                 use double-precision reals (native engine)
  --no-vn                  disable value numbering
  --no-contract            disable contraction (fold + DCE)
  --emit-cpp               print the generated C++ and exit
  --emit-ir                print the optimized MidIR and exit
  --input NAME=VALUE       set an input (scalars, v1,v2,... for vectors,
                           a .nrrd path or synth:GEN:SIZE for images;
                           GEN in {hand, vessels, flow, noise, portrait})
  --workers N              worker threads (default 1)
  --scheduler=bsp|pooled   parallel scheduler: bsp spawns fresh threads per
                           run (the paper's model); pooled reuses a
                           persistent work-stealing strand pool
                           (docs/SCHEDULING.md; default bsp)
  --steps N                max supersteps (default 10000)
  --out FILE.nrrd          write the first output as NRRD (grid programs)
  --print-output NAME      print an output to stdout (text)
  --stats                  print a per-superstep telemetry summary (stderr)
  --stats-out FILE.json    write run telemetry as JSON (includes a "metrics"
                           registry snapshot)
  --metrics-out FILE.prom  write the metrics registry in Prometheus text
                           exposition format after the run
  --metrics-port N         serve live metrics at http://127.0.0.1:N/metrics
                           while the program runs (0 picks a free port;
                           the bound port is printed to stderr)
  --trace-out FILE.json    write a Chrome-trace (Perfetto) worker timeline
  --profile                print an annotated per-source-line cost listing
  --profile-out FILE.json  write the per-line profile as JSON
  --trace-strands          record strand start/stabilize/die events (they
                           appear in --trace-out as instant events)
  --events-out FILE.json   write the strand lifecycle event log as JSON
  --time-passes            print per-compiler-pass wall time and IR sizes
  --record DIR             write a replay bundle of this run into DIR
                           (source, options, inputs, per-superstep state
                           digests; docs/REPLAY.md)
  --replay BUNDLE          re-compile and re-run a recorded bundle (a DIR
                           or a .tar of one) and compare superstep digests;
                           exit 4 and report the first divergent superstep
                           and strand on mismatch
  --dump-strand N          with --replay: pretty-print recorded strand N
                           (no re-run) and exit
  --at-superstep K         digest entry --dump-strand reads (0 = after
                           initialize, k = after superstep k; default 0)
  --deadline-ms N          stop the run after N ms of wall-clock time
  --max-faults N           tolerate at most N trapped strand faults
                           (0 stops on the first fault)
  --watchdog N             stop after N supersteps with no strand retiring
                           (convergence watchdog; outcome "diverged")
  --strict-fp              trap strands whose state becomes non-finite
  --strict                 exit nonzero when the run outcome is not
                           "converged"
  --log-level LVL          debug|info|warn|error (default info)
  --log-json               structured JSONL log records on stderr
  --quiet                  suppress statistics (same as --log-level error)
)");
}

} // namespace

int main(int Argc, char **Argv) {
  CompileOptions Opts;
  std::string File;
  std::vector<std::pair<std::string, std::string>> Inputs;
  bool EmitCpp = false, EmitIr = false, Quiet = false, Stats = false;
  logging::Logger::Options LogOpts;
  bool Profile = false, TraceStrands = false, TimePasses = false;
  bool StrictFp = false, Strict = false;
  int Workers = 1, MaxSteps = 10000, Watchdog = 0;
  rt::Scheduler Sched = rt::Scheduler::Bsp;
  long long DeadlineMs = 0, MaxFaults = -1;
  int MetricsPort = -1;
  std::string OutFile, PrintOutput, StatsOut, TraceOut, ProfileOut, EventsOut;
  std::string MetricsOut, RecordDir, ReplayPath;
  long long DumpStrand = -1;
  int AtSuperstep = 0;

  for (int A = 1; A < Argc; ++A) {
    std::string Arg = Argv[A];
    if (Arg == "--help" || Arg == "-h") {
      usage();
      return 0;
    } else if (Arg == "--engine=interp") {
      Opts.Eng = Engine::Interp;
    } else if (Arg == "--engine=native") {
      Opts.Eng = Engine::Native;
    } else if (Arg == "--double") {
      Opts.DoublePrecision = true;
    } else if (Arg == "--no-vn") {
      Opts.EnableValueNumbering = false;
    } else if (Arg == "--no-contract") {
      Opts.EnableContract = false;
    } else if (Arg == "--emit-cpp") {
      EmitCpp = true;
    } else if (Arg == "--emit-ir") {
      EmitIr = true;
    } else if (Arg == "--quiet") {
      Quiet = true;
      LogOpts.MinLevel = logging::Level::Error;
    } else if (Arg == "--log-json") {
      LogOpts.Json = true;
    } else if (Arg == "--log-level" && A + 1 < Argc) {
      if (!logging::parseLevel(Argv[++A], LogOpts.MinLevel)) {
        std::fprintf(stderr, "error: bad --log-level '%s'\n", Argv[A]);
        return 1;
      }
    } else if (Arg == "--input" && A + 1 < Argc) {
      std::string KV = Argv[++A];
      size_t Eq = KV.find('=');
      if (Eq == std::string::npos) {
        std::fprintf(stderr, "error: --input needs NAME=VALUE\n");
        return 1;
      }
      Inputs.emplace_back(KV.substr(0, Eq), KV.substr(Eq + 1));
    } else if (Arg == "--workers" && A + 1 < Argc) {
      Workers = std::atoi(Argv[++A]);
    } else if (startsWith(Arg, "--scheduler=")) {
      if (!rt::parseSchedulerName(Arg.substr(12), Sched)) {
        std::fprintf(stderr,
                     "error: bad --scheduler '%s' (want bsp or pooled)\n",
                     Arg.c_str() + 12);
        return 1;
      }
    } else if (Arg == "--scheduler" && A + 1 < Argc) {
      if (!rt::parseSchedulerName(Argv[++A], Sched)) {
        std::fprintf(stderr,
                     "error: bad --scheduler '%s' (want bsp or pooled)\n",
                     Argv[A]);
        return 1;
      }
    } else if (Arg == "--steps" && A + 1 < Argc) {
      MaxSteps = std::atoi(Argv[++A]);
    } else if (Arg == "--out" && A + 1 < Argc) {
      OutFile = Argv[++A];
    } else if (Arg == "--print-output" && A + 1 < Argc) {
      PrintOutput = Argv[++A];
    } else if (Arg == "--stats") {
      Stats = true;
    } else if (Arg == "--stats-out" && A + 1 < Argc) {
      StatsOut = Argv[++A];
    } else if (startsWith(Arg, "--stats-out=")) {
      StatsOut = Arg.substr(12);
    } else if (Arg == "--metrics-out" && A + 1 < Argc) {
      MetricsOut = Argv[++A];
    } else if (startsWith(Arg, "--metrics-out=")) {
      MetricsOut = Arg.substr(14);
    } else if (Arg == "--metrics-port" && A + 1 < Argc) {
      MetricsPort = std::atoi(Argv[++A]);
    } else if (startsWith(Arg, "--metrics-port=")) {
      MetricsPort = std::atoi(Arg.c_str() + 15);
    } else if (Arg == "--trace-out" && A + 1 < Argc) {
      TraceOut = Argv[++A];
    } else if (startsWith(Arg, "--trace-out=")) {
      TraceOut = Arg.substr(12);
    } else if (Arg == "--profile") {
      Profile = true;
    } else if (Arg == "--profile-out" && A + 1 < Argc) {
      ProfileOut = Argv[++A];
    } else if (startsWith(Arg, "--profile-out=")) {
      ProfileOut = Arg.substr(14);
    } else if (Arg == "--trace-strands") {
      TraceStrands = true;
    } else if (Arg == "--events-out" && A + 1 < Argc) {
      EventsOut = Argv[++A];
    } else if (startsWith(Arg, "--events-out=")) {
      EventsOut = Arg.substr(13);
    } else if (Arg == "--time-passes") {
      TimePasses = true;
    } else if (Arg == "--record" && A + 1 < Argc) {
      RecordDir = Argv[++A];
    } else if (startsWith(Arg, "--record=")) {
      RecordDir = Arg.substr(9);
    } else if (Arg == "--replay" && A + 1 < Argc) {
      ReplayPath = Argv[++A];
    } else if (startsWith(Arg, "--replay=")) {
      ReplayPath = Arg.substr(9);
    } else if (Arg == "--dump-strand" && A + 1 < Argc) {
      DumpStrand = std::atoll(Argv[++A]);
    } else if (Arg == "--at-superstep" && A + 1 < Argc) {
      AtSuperstep = std::atoi(Argv[++A]);
    } else if (Arg == "--deadline-ms" && A + 1 < Argc) {
      DeadlineMs = std::atoll(Argv[++A]);
    } else if (Arg == "--max-faults" && A + 1 < Argc) {
      MaxFaults = std::atoll(Argv[++A]);
    } else if (Arg == "--watchdog" && A + 1 < Argc) {
      Watchdog = std::atoi(Argv[++A]);
    } else if (Arg == "--strict-fp") {
      StrictFp = true;
    } else if (Arg == "--strict") {
      Strict = true;
    } else if (!Arg.empty() && Arg[0] != '-') {
      File = Arg;
    } else {
      std::fprintf(stderr, "error: unknown option '%s'\n", Arg.c_str());
      usage();
      return 1;
    }
  }
  logging::Logger::global().configure(LogOpts);

  // Replay mode: the bundle carries the program; no source argument.
  if (!ReplayPath.empty()) {
    if (DumpStrand >= 0) {
      Result<observe::ReplayBundle> BR = loadBundle(ReplayPath);
      if (!BR.isOk()) {
        logging::error(BR.message());
        return 1;
      }
      Result<std::string> D = observe::dumpStrand(*BR, DumpStrand, AtSuperstep);
      if (!D.isOk()) {
        logging::error(D.message());
        return 1;
      }
      std::fputs(D->c_str(), stdout);
      return 0;
    }
    Result<ReplayReport> RR = replayBundle(ReplayPath, Opts.WorkDir);
    if (!RR.isOk()) {
      logging::error(RR.message());
      return 1;
    }
    std::fputs(RR->Text.c_str(), stdout);
    return RR->Match ? 0 : 4;
  }
  if (File.empty()) {
    usage();
    return 1;
  }

  Result<CompiledProgram> CP = compileFile(File, Opts);
  if (!CP.isOk()) {
    // Compiler diagnostics are already formatted with source locations;
    // print them verbatim rather than wrapping them in a log record.
    std::fprintf(stderr, "%s\n", CP.message().c_str());
    return 1;
  }
  if (TimePasses) {
    std::fprintf(stderr, "pass timing:\n");
    std::fprintf(stderr, "  %-18s %12s %10s %10s\n", "pass", "time(ms)",
                 "ops-in", "ops-out");
    uint64_t TotalNs = 0;
    for (const PassTiming &T : CP->passTimings()) {
      std::fprintf(stderr, "  %-18s %12.3f %10d %10d\n", T.Pass.c_str(),
                   static_cast<double>(T.Ns) / 1e6, T.OpsBefore, T.OpsAfter);
      TotalNs += T.Ns;
    }
    std::fprintf(stderr, "  %-18s %12.3f\n", "total",
                 static_cast<double>(TotalNs) / 1e6);
  }
  if (EmitIr) {
    std::fputs(ir::print(CP->midModule()).c_str(), stdout);
    return 0;
  }
  if (EmitCpp) {
    std::fputs(CP->emitCpp().c_str(), stdout);
    return 0;
  }

  Result<std::unique_ptr<rt::ProgramInstance>> Inst = CP->instantiate();
  if (!Inst.isOk()) {
    logging::error(Inst.message());
    return 1;
  }
  rt::ProgramInstance &I = **Inst;

  FlightRecorder Rec;
  if (!RecordDir.empty()) {
    std::string Source;
    if (std::FILE *F = std::fopen(File.c_str(), "r")) {
      char Buf[4096];
      size_t N;
      while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
        Source.append(Buf, N);
      std::fclose(F);
    }
    Rec.begin(RecordDir, CP->midModule().Name, std::move(Source), Opts,
              CP->midModule());
  }

  // Apply inputs (shared text→input binding, driver/inputs.h).
  for (const auto &[Name, Value] : Inputs) {
    Status S = setInputFromText(I, Name, Value);
    if (!S.isOk()) {
      logging::error(S.message(), {logging::strField("input", Name)});
      return 1;
    }
    if (Rec.active()) {
      Status RS = Rec.addInput(Name, Value);
      if (!RS.isOk()) {
        logging::error(RS.message());
        return 1;
      }
    }
  }

  Status S = I.initialize();
  if (!S.isOk()) {
    logging::error(S.message());
    return 1;
  }
  rt::RunConfig RC;
  RC.MaxSupersteps = MaxSteps;
  RC.NumWorkers = Workers;
  RC.Sched = Sched;
  RC.CollectStats = Stats || !StatsOut.empty() || !TraceOut.empty();
  RC.CollectProfile = Profile || !ProfileOut.empty();
  RC.CollectLifecycle = TraceStrands || !EventsOut.empty();
  // Metrics arm whenever any consumer wants them: an explicit Prometheus
  // sink, the live endpoint, or the stats outputs (whose summary table and
  // JSON carry the registry snapshot).
  RC.CollectMetrics =
      Stats || !StatsOut.empty() || !MetricsOut.empty() || MetricsPort >= 0;
  RC.Policy.DeadlineNs = DeadlineMs * 1000000;
  RC.Policy.MaxFaults = MaxFaults;
  RC.Policy.WatchdogSteps = Watchdog;
  RC.Policy.StrictFp = StrictFp;
  if (Rec.active())
    Rec.armConfig(RC);
  // Live monitoring: a background RSS sampler plus the embedded HTTP
  // endpoint, both torn down right after the run. The provider overlays the
  // sampler's gauge onto whatever engine-side snapshot is current.
  observe::RssSampler Sampler;
  observe::MetricsServer Server;
  if (MetricsPort >= 0) {
    Sampler.start();
    Status SS = Server.start(MetricsPort, [&I, &Sampler] {
      observe::MetricsData D = I.liveMetrics();
      D.Gauges[observe::MgProcessRss] = Sampler.bytes();
      return observe::prometheusText(D);
    });
    if (!SS.isOk()) {
      logging::error(SS.message());
      return 1;
    }
    logging::info("serving metrics",
                  {logging::strField(
                      "url", strf("http://127.0.0.1:", Server.port(),
                                  "/metrics"))});
  }
  Result<rt::RunStats> Run = I.run(RC);
  Server.stop();
  Sampler.stop();
  if (!Run.isOk()) {
    logging::error(Run.message());
    return 1;
  }
  // The engines cannot see process RSS; stamp the final sample host-side.
  if (Run->Metrics.Enabled)
    Run->Metrics.Gauges[observe::MgProcessRss] = observe::readProcessRssBytes();
  logging::info("run finished",
                {logging::numField("steps", static_cast<int64_t>(Run->Steps)),
                 logging::numField("strands",
                                   static_cast<uint64_t>(I.numStrands())),
                 logging::numField("stable",
                                   static_cast<uint64_t>(I.numStable())),
                 logging::numField("dead",
                                   static_cast<uint64_t>(I.numDead())),
                 logging::strField("outcome",
                                   observe::runOutcomeName(Run->Outcome))});
  for (const observe::StrandFault &F : Run->Faults)
    logging::warn("strand fault",
                  {logging::numField("strand", F.Strand),
                   logging::numField("step", static_cast<int64_t>(F.Step)),
                   logging::numField("worker",
                                     static_cast<int64_t>(F.Worker)),
                   logging::strField("kind", observe::faultKindName(F.Kind)),
                   logging::strField("message", F.Message)});
  // A run that stopped short of convergence — step-limit exhaustion,
  // deadline, divergence, fault budget — must never pass silently.
  if (Run->Outcome != observe::RunOutcome::Converged)
    logging::Logger::global().log(
        logging::Level::Warn, "run did not converge",
        {logging::strField("outcome",
                           observe::runOutcomeName(Run->Outcome)),
         logging::numField("steps", static_cast<int64_t>(Run->Steps)),
         logging::numField("faults",
                           static_cast<uint64_t>(Run->Faults.size()))});
  if (Rec.active()) {
    Status W = Rec.finish(I, *Run);
    if (!W.isOk()) {
      logging::error(W.message());
      return 1;
    }
    logging::info("wrote recording",
                  {logging::strField("dir", Rec.dir()),
                   logging::numField(
                       "digest_entries",
                       static_cast<uint64_t>(Rec.bundle().Digests.entries()))});
  }
  if (Stats)
    std::fputs(observe::formatSummary(*Run).c_str(), stderr);
  auto WriteText = [](const std::string &Path, const std::string &Text) {
    std::FILE *F = std::fopen(Path.c_str(), "w");
    if (!F) {
      logging::error("cannot write file", {logging::strField("path", Path)});
      return false;
    }
    std::fwrite(Text.data(), 1, Text.size(), F);
    std::fclose(F);
    return true;
  };
  auto NoteWrote = [](const std::string &Path) {
    logging::info("wrote file", {logging::strField("path", Path)});
  };
  if (!StatsOut.empty()) {
    if (!WriteText(StatsOut, observe::statsJson(*Run)))
      return 1;
    NoteWrote(StatsOut);
  }
  if (!MetricsOut.empty()) {
    if (!WriteText(MetricsOut, observe::prometheusText(Run->Metrics)))
      return 1;
    NoteWrote(MetricsOut);
  }
  if (!TraceOut.empty()) {
    if (!WriteText(TraceOut, observe::chromeTrace(*Run)))
      return 1;
    NoteWrote(TraceOut);
  }
  if (Profile || !ProfileOut.empty()) {
    observe::ProfileData PD = I.profile();
    // Re-read the program text so the listing and JSON can show each line.
    std::string Source;
    if (std::FILE *F = std::fopen(File.c_str(), "r")) {
      char Buf[4096];
      size_t N;
      while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
        Source.append(Buf, N);
      std::fclose(F);
    }
    if (Profile)
      std::fputs(observe::profileListing(PD, Source).c_str(), stderr);
    if (!ProfileOut.empty()) {
      if (!WriteText(ProfileOut, observe::profileJson(PD, Source)))
        return 1;
      NoteWrote(ProfileOut);
    }
  }
  if (!EventsOut.empty()) {
    if (!WriteText(EventsOut, observe::lifecycleJson(*Run)))
      return 1;
    NoteWrote(EventsOut);
  }

  if (!OutFile.empty() && !I.outputs().empty()) {
    Result<Nrrd> N = outputToNrrd(I);
    if (!N.isOk()) {
      logging::error(N.message());
      return 1;
    }
    Status W = nrrdWrite(*N, OutFile);
    if (!W.isOk()) {
      logging::error(W.message());
      return 1;
    }
    NoteWrote(OutFile);
  }
  if (!PrintOutput.empty()) {
    std::vector<double> Data;
    S = I.getOutput(PrintOutput, Data);
    if (!S.isOk()) {
      logging::error(S.message());
      return 1;
    }
    for (double V : Data)
      std::printf("%.9g\n", V);
  }
  if (Strict && Run->Outcome != observe::RunOutcome::Converged)
    return 3;
  return 0;
}

//===--- driver/driver.h - the public compiler API ---------------------------===//
//
// Part of the Diderot-C++ reproduction (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The library entry point a host application uses:
///
///   auto C = diderot::compileString(source, opts);      // parse .. LowIR
///   auto I = C->instantiate();                          // engine instance
///   I->setInputImage("img", myVolume);
///   I->initialize();
///   auto stats = I->run(1000, 8);   // Result<rt::RunStats>
///   I->getOutput("gray", data);
///
/// Two engines are provided. Engine::Native mirrors the paper's pipeline:
/// the compiler emits C++ (the paper emitted C with vector extensions),
/// hands it to the host system's compiler, and loads the resulting shared
/// object. Engine::Interp evaluates MidIR directly — the reference
/// semantics, available without a host compiler.
///
//===----------------------------------------------------------------------===//

#ifndef DIDEROT_DRIVER_DRIVER_H
#define DIDEROT_DRIVER_DRIVER_H

#include <memory>
#include <string>
#include <vector>

#include "ir/ir.h"
#include "runtime/host.h"
#include "support/result.h"

namespace diderot {

/// Wall time and IR size delta of one compiler pass (`--time-passes`).
/// Always collected by compileString — each pass runs exactly once per
/// compile, so the overhead is a handful of clock reads.
struct PassTiming {
  std::string Pass;  ///< pass name, e.g. "contract(mid)"
  uint64_t Ns = 0;   ///< wall time in nanoseconds
  int OpsBefore = 0; ///< module instruction count before the pass
  int OpsAfter = 0;  ///< module instruction count after the pass
};

enum class Engine {
  Interp, ///< MidIR interpreter (double precision, no host compiler needed)
  Native, ///< emit C++, compile with the host compiler, dlopen
};

struct CompileOptions {
  Engine Eng = Engine::Native;
  /// Native engine: represent `real` as double instead of float ("the user
  /// must decide if reals are represented as single or double-precision
  /// floats", Section 6.3).
  bool DoublePrecision = false;
  /// Optimization toggles (for the ablation benchmarks).
  bool EnableContract = true;
  bool EnableValueNumbering = true;
  /// Native engine: keep the generated .cpp next to the .so for inspection.
  bool KeepCpp = false;
  /// Scratch directory for generated artifacts; empty = std::filesystem's
  /// temp directory.
  std::string WorkDir;
  /// Extra flags for the host C++ compiler (appended after the defaults).
  std::string ExtraCxxFlags;
  /// Native engine, host-compile supervision (codegen/native_load.cpp):
  /// wall-clock budget for one host-compiler run in milliseconds (0 = wait
  /// forever) and the retry budget for signal deaths, the transient class —
  /// nonzero exits and timeouts never retry. Deliberately NOT part of the
  /// cache key: they change when a compile is abandoned, never what it
  /// produces.
  int64_t HostCompileTimeoutMs = 120000;
  int HostCompileRetries = 1;
  int64_t HostCompileBackoffMs = 100;
  /// Cap on the cache directory's total ddr-*.so bytes; least-recently-used
  /// artifacts are evicted after each install. 0 = unbounded.
  uint64_t CacheMaxBytes = 0;
};

/// A compiled program, ready to instantiate. Cheap to copy-instantiate many
/// times; the native shared object is built once on first use.
class CompiledProgram {
public:
  CompiledProgram(ir::Module Mid, ir::Module Low, CompileOptions Opts,
                  std::vector<PassTiming> Timings = {});
  ~CompiledProgram();
  CompiledProgram(CompiledProgram &&) noexcept;
  CompiledProgram &operator=(CompiledProgram &&) noexcept;

  /// The module after optimization at MidIR (pre-scalarization), for
  /// inspection and the interpreter engine.
  const ir::Module &midModule() const;
  /// The final LowIR module the code generator consumes.
  const ir::Module &lowModule() const;

  /// Generate the native C++ translation unit (available regardless of the
  /// selected engine; used by tests and `diderotc -emit-cpp`).
  std::string emitCpp() const;

  /// Create a fresh instance (own inputs, strands, outputs). Const and
  /// thread-safe: the serve daemon holds one shared_ptr<const
  /// CompiledProgram> per cached program and instantiates from several job
  /// workers at once (the native loader serializes the underlying .so
  /// compile internally; see codegen/cache.h).
  Result<std::unique_ptr<rt::ProgramInstance>> instantiate() const;

  /// Per-pass wall time and instruction-count deltas for this compile.
  const std::vector<PassTiming> &passTimings() const;

private:
  struct Impl;
  std::unique_ptr<Impl> P;
};

/// Front door: compile Diderot source text. \p Name is used in diagnostics
/// and generated-artifact file names.
Result<CompiledProgram> compileString(const std::string &Source,
                                      const CompileOptions &Opts = {},
                                      const std::string &Name = "program");

/// Compile a .diderot file.
Result<CompiledProgram> compileFile(const std::string &Path,
                                    const CompileOptions &Opts = {});

} // namespace diderot

#endif // DIDEROT_DRIVER_DRIVER_H

//===--- driver/record.h - flight recorder and bundle replay -----------------===//
//
// Part of the Diderot-C++ reproduction (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The orchestration half of record/replay (docs/REPLAY.md). The FORMAT —
/// manifest, digest stream, divergence diagnosis — lives down the stack in
/// observe/replay.h, which only sees diderot_support; this layer is the one
/// that can actually compile and run programs, so it owns:
///
///  * FlightRecorder — rides along one compile+run (diderotc --record, the
///    daemon's --record-on-failure) collecting everything a bundle needs:
///    source, compile options, input bindings (file-based NRRDs copied in
///    content-addressed), run configuration, policy (including the fault
///    injection plan), the per-superstep digest stream, and the recorded
///    outcome. finish() publishes the bundle atomically.
///
///  * replayBundle — the inverse: re-compile the bundled source under the
///    bundled options, re-bind the bundled inputs, re-run under the bundled
///    configuration with digests armed, and compare superstep-by-superstep.
///    On mismatch the report pinpoints the first divergent superstep — and,
///    when the bundle carries a state log, the first divergent strand and
///    slot by source-map name.
///
//===----------------------------------------------------------------------===//

#ifndef DIDEROT_DRIVER_RECORD_H
#define DIDEROT_DRIVER_RECORD_H

#include <map>
#include <string>
#include <vector>

#include "driver/driver.h"
#include "observe/replay.h"
#include "runtime/host.h"
#include "support/result.h"

namespace diderot {

/// Source-map names for every canonical strand state slot, in digest slot
/// order: strand parameters first ("param<i>", components "[k]"-suffixed),
/// then state variables under their declared names. Build from the MID
/// module — scalarization never reorders Module::State, so the mid-level
/// names map 1:1 onto the flattened slots both engines hash.
std::vector<std::string> strandSlotNames(const ir::Module &M);

/// Digest over every output of a finished instance (getOutput of each
/// output in declaration order, values in storage order), as 32 hex chars.
std::string outputDigestHex(rt::ProgramInstance &I);

/// Best-effort commit hash of the enclosing git checkout (walks up from the
/// current directory reading .git/HEAD). Empty when not in a checkout —
/// informational manifest identity only, never load-bearing.
std::string currentGitSha();

/// Collects one run into a replay bundle. Usage, in run order:
///
///   FlightRecorder R;
///   R.begin(dir, name, source, opts, prog.midModule());
///   R.addInput(name, text);            // per binding, in binding order
///   R.armConfig(runConfig);            // before run(); turns digests on
///   ...run...
///   R.finish(instance, stats);         // writes the bundle atomically
class FlightRecorder {
public:
  /// Start recording into directory \p Dir (created by finish()).
  void begin(std::string Dir, const std::string &ProgramName,
             std::string Source, const CompileOptions &Opts,
             const ir::Module &Mid);

  /// Record one textual input binding. A value naming a readable file
  /// (a .nrrd path) is copied into the bundle content-addressed and
  /// replays from the bundled copy; every other text (scalars, tensors,
  /// synth: specs) replays verbatim.
  Status addInput(const std::string &Name, const std::string &Value);

  /// Record the run configuration and policy (including the fault plan)
  /// and arm digest + state-log capture on \p C.
  void armConfig(rt::RunConfig &C);

  /// After the run: capture the digest stream, outcome, and final-output
  /// digest, then write the bundle. The manifest is written last, so a
  /// visible manifest means a complete bundle.
  Status finish(rt::ProgramInstance &I, const rt::RunStats &Stats);

  /// Write the bundle for a job that never ran — the daemon's
  /// compile-trapped jobs (instantiate failed: the host compiler crashed,
  /// timed out, or miscompiled) and run() hard errors. Source, options,
  /// inputs, and configuration are all recorded; the outcome is
  /// \p OutcomeLabel and there is no digest stream, so replaying the
  /// bundle reproduces the trap itself.
  Status finishTrapped(const std::string &OutcomeLabel);

  bool active() const { return !Dir.empty(); }
  const std::string &dir() const { return Dir; }
  const observe::ReplayBundle &bundle() const { return B; }

private:
  std::string Dir;
  observe::ReplayBundle B;
  std::map<std::string, std::string> Files; ///< bundle name -> raw bytes
};

/// What replaying a bundle produced, alongside what was recorded.
struct ReplayReport {
  observe::ReplayBundle Bundle; ///< the recording (digest stream included)
  std::string ReplayedOutcome;
  int ReplayedSteps = 0;
  std::string ReplayedOutputDigest;
  /// False when per-step digests could not be compared (pre-v7 native .so
  /// degrade) — then only outcome and final-output digest were checked.
  bool DigestsCompared = false;
  observe::Divergence Div; ///< meaningful when DigestsCompared
  bool OutcomeMatches = false;
  bool OutputMatches = false;
  bool Match = false;      ///< everything checked agreed
  std::string Text;        ///< printable multi-line report
};

/// Load a bundle from \p Path: a bundle directory, or a ustar archive of
/// one (the daemon's GET /jobs/<id>/bundle form), which is materialized
/// into a scratch directory. \p BundleDir receives the directory the
/// bundle was read from (needed to resolve bundled input files).
Result<observe::ReplayBundle> loadBundle(const std::string &Path,
                                         std::string *BundleDir = nullptr);

/// Re-compile, re-bind, and re-run the bundle at \p Path under its recorded
/// configuration, then compare against the recording. \p WorkDir is the
/// compile scratch directory (empty = system temp). A recorded "deadline"
/// outcome replays step-capped at the recorded superstep count instead of
/// racing a wall clock — determinism is a property of state evolution, not
/// of the replay machine's speed — and counts as matching when the replay
/// reaches the same superstep with the same digests.
Result<ReplayReport> replayBundle(const std::string &Path,
                                  const std::string &WorkDir = "");

} // namespace diderot

#endif // DIDEROT_DRIVER_RECORD_H

//===--- driver/driver.cpp -------------------------------------------------===//

#include "driver/driver.h"

#include <chrono>
#include <fstream>
#include <sstream>

#include "frontend/parser.h"
#include "frontend/typecheck.h"
#include "interp/interp.h"
#include "passes/passes.h"
#include "simple/lower.h"

namespace diderot {

// Implemented in src/codegen.
namespace codegen {
std::string emitCpp(const ir::Module &M, bool DoublePrecision);
Result<std::unique_ptr<rt::ProgramInstance>>
loadNative(const ir::Module &M, const CompileOptions &Opts,
           const std::string &Name);
} // namespace codegen

struct CompiledProgram::Impl {
  ir::Module Mid;
  ir::Module Low;
  CompileOptions Opts;
  std::string Name;
  std::vector<PassTiming> Timings;
};

CompiledProgram::CompiledProgram(ir::Module Mid, ir::Module Low,
                                 CompileOptions Opts,
                                 std::vector<PassTiming> Timings)
    : P(std::make_unique<Impl>()) {
  P->Mid = std::move(Mid);
  P->Low = std::move(Low);
  P->Opts = std::move(Opts);
  P->Name = P->Mid.Name;
  P->Timings = std::move(Timings);
}

CompiledProgram::~CompiledProgram() = default;
CompiledProgram::CompiledProgram(CompiledProgram &&) noexcept = default;
CompiledProgram &CompiledProgram::operator=(CompiledProgram &&) noexcept =
    default;

const ir::Module &CompiledProgram::midModule() const { return P->Mid; }
const ir::Module &CompiledProgram::lowModule() const { return P->Low; }

const std::vector<PassTiming> &CompiledProgram::passTimings() const {
  return P->Timings;
}

std::string CompiledProgram::emitCpp() const {
  return codegen::emitCpp(P->Low, P->Opts.DoublePrecision);
}

Result<std::unique_ptr<rt::ProgramInstance>>
CompiledProgram::instantiate() const {
  if (P->Opts.Eng == Engine::Interp) {
    ir::Module Copy = P->Mid;
    return interp::makeInstance(std::move(Copy));
  }
  return codegen::loadNative(P->Low, P->Opts, P->Name);
}

Result<CompiledProgram> compileString(const std::string &Source,
                                      const CompileOptions &Opts,
                                      const std::string &Name) {
  using RC = Result<CompiledProgram>;
  DiagnosticEngine Diags;
  Parser Prs(Source, Diags);
  std::unique_ptr<Program> Prog = Prs.parseProgram();
  if (Diags.hasErrors())
    return RC::error(strf(Name, ": parse errors:\n", Diags.str()));
  if (!typeCheck(*Prog, Diags))
    return RC::error(strf(Name, ": type errors:\n", Diags.str()));

  Result<ir::Module> High = lowerToHighIR(*Prog, Diags);
  if (!High.isOk())
    return RC::error(strf(Name, ": ", High.message()));
  ir::Module M = High.take();
  M.Name = Name;

  std::vector<PassTiming> Timings;
  // Run one pass under the clock, recording wall time and the module
  // instruction-count delta (`--time-passes` in diderotc).
  auto timed = [&](const char *PassName, auto &&Fn) {
    PassTiming T;
    T.Pass = PassName;
    T.OpsBefore = ir::countModuleOps(M);
    auto T0 = std::chrono::steady_clock::now();
    Status S = Fn();
    T.Ns = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - T0)
            .count());
    T.OpsAfter = ir::countModuleOps(M);
    Timings.push_back(std::move(T));
    return S;
  };

  Status S = timed("normalize", [&] { return passes::normalizeFields(M); });
  if (!S.isOk())
    return RC::error(strf(Name, ": ", S.message()));
  if (Opts.EnableContract)
    timed("contract(high)", [&] { passes::contract(M); return Status::ok(); });
  S = timed("mid_lower", [&] { return passes::lowerToMid(M); });
  if (!S.isOk())
    return RC::error(strf(Name, ": ", S.message()));
  if (Opts.EnableValueNumbering)
    timed("value_number(mid)",
          [&] { passes::valueNumber(M); return Status::ok(); });
  if (Opts.EnableContract)
    timed("contract(mid)", [&] { passes::contract(M); return Status::ok(); });

  ir::Module Mid = M; // snapshot for the interpreter engine
  S = timed("scalarize", [&] { return passes::lowerToLow(M); });
  if (!S.isOk())
    return RC::error(strf(Name, ": ", S.message()));
  if (Opts.EnableValueNumbering)
    timed("value_number(low)",
          [&] { passes::valueNumber(M); return Status::ok(); });
  if (Opts.EnableContract)
    timed("contract(low)", [&] { passes::contract(M); return Status::ok(); });

  return CompiledProgram(std::move(Mid), std::move(M), Opts,
                         std::move(Timings));
}

Result<CompiledProgram> compileFile(const std::string &Path,
                                    const CompileOptions &Opts) {
  std::ifstream In(Path);
  if (!In)
    return Result<CompiledProgram>::error(
        strf("cannot open '", Path, "'"));
  std::ostringstream SS;
  SS << In.rdbuf();
  // Derive a program name from the file name.
  std::string Name = Path;
  size_t Slash = Name.find_last_of('/');
  if (Slash != std::string::npos)
    Name = Name.substr(Slash + 1);
  size_t Dot = Name.find_last_of('.');
  if (Dot != std::string::npos)
    Name = Name.substr(0, Dot);
  return compileString(SS.str(), Opts, Name);
}

} // namespace diderot

//===--- observe/replay.cpp - replay bundle format and divergence diagnosis --===//
//
// Part of the Diderot-C++ reproduction (PLDI 2012).
//
// Format layer of the flight recorder (see replay.h for the bundle layout).
// The JSON here is deliberately a tiny dialect — objects, arrays, strings,
// numbers, booleans — written and read by this file only; replays never
// feed it foreign documents, but the parser still rejects malformed input
// cleanly because bundles cross machines and HTTP.
//
//===----------------------------------------------------------------------===//

#include "observe/replay.h"

#include <algorithm>
#include <bit>
#include <cctype>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "support/atomic_file.h"
#include "support/strings.h"

namespace diderot::observe {

namespace fs = std::filesystem;

namespace {

//===----------------------------------------------------------------------===//
// JSON writing
//===----------------------------------------------------------------------===//

std::string jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size() + 2);
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20)
        Out += strf("\\u00", "0123456789abcdef"[(C >> 4) & 0xF],
                    "0123456789abcdef"[C & 0xF]);
      else
        Out += C;
    }
  }
  return Out;
}

std::string jstr(const std::string &S) { return strf('"', jsonEscape(S), '"'); }

//===----------------------------------------------------------------------===//
// JSON parsing (objects, arrays, strings, integers, booleans)
//===----------------------------------------------------------------------===//

struct Json {
  enum Kind { Null, Bool, Num, Str, Arr, Obj } K = Null;
  bool B = false;
  double N = 0;
  std::string S;
  std::vector<Json> A;
  std::map<std::string, Json> O;

  const Json *get(const std::string &Key) const {
    auto It = O.find(Key);
    return It == O.end() ? nullptr : &It->second;
  }
  std::string str(const std::string &Key, std::string Def = "") const {
    const Json *V = get(Key);
    return V && V->K == Str ? V->S : Def;
  }
  int64_t num(const std::string &Key, int64_t Def = 0) const {
    const Json *V = get(Key);
    return V && V->K == Num ? static_cast<int64_t>(V->N) : Def;
  }
  bool flag(const std::string &Key, bool Def = false) const {
    const Json *V = get(Key);
    return V && V->K == Bool ? V->B : Def;
  }
};

class JsonParser {
public:
  JsonParser(const std::string &Text) : T(Text) {}

  bool parse(Json &Out) { return value(Out) && (ws(), Pos == T.size()); }

private:
  void ws() {
    while (Pos < T.size() && (T[Pos] == ' ' || T[Pos] == '\t' ||
                              T[Pos] == '\n' || T[Pos] == '\r'))
      ++Pos;
  }
  bool lit(const char *S, Json &Out, Json::Kind K, bool B) {
    size_t N = std::strlen(S);
    if (T.compare(Pos, N, S) != 0)
      return false;
    Pos += N;
    Out.K = K;
    Out.B = B;
    return true;
  }
  bool string(std::string &Out) {
    if (Pos >= T.size() || T[Pos] != '"')
      return false;
    ++Pos;
    Out.clear();
    while (Pos < T.size() && T[Pos] != '"') {
      char C = T[Pos++];
      if (C != '\\') {
        Out += C;
        continue;
      }
      if (Pos >= T.size())
        return false;
      char E = T[Pos++];
      switch (E) {
      case 'n':
        Out += '\n';
        break;
      case 'r':
        Out += '\r';
        break;
      case 't':
        Out += '\t';
        break;
      case 'u': {
        if (Pos + 4 > T.size())
          return false;
        unsigned V = 0;
        for (int I = 0; I < 4; ++I) {
          char H = T[Pos++];
          V <<= 4;
          if (H >= '0' && H <= '9')
            V |= static_cast<unsigned>(H - '0');
          else if (H >= 'a' && H <= 'f')
            V |= static_cast<unsigned>(H - 'a' + 10);
          else if (H >= 'A' && H <= 'F')
            V |= static_cast<unsigned>(H - 'A' + 10);
          else
            return false;
        }
        // Bundle manifests only escape control bytes; anything else would
        // have been written raw UTF-8.
        Out += static_cast<char>(V & 0xFF);
        break;
      }
      default:
        Out += E; // \" \\ \/ and the rest map to themselves
      }
    }
    if (Pos >= T.size())
      return false;
    ++Pos; // closing quote
    return true;
  }
  bool value(Json &Out) {
    ws();
    if (Pos >= T.size())
      return false;
    char C = T[Pos];
    if (C == '{') {
      ++Pos;
      Out.K = Json::Obj;
      ws();
      if (Pos < T.size() && T[Pos] == '}') {
        ++Pos;
        return true;
      }
      while (true) {
        ws();
        std::string Key;
        if (!string(Key))
          return false;
        ws();
        if (Pos >= T.size() || T[Pos] != ':')
          return false;
        ++Pos;
        Json V;
        if (!value(V))
          return false;
        Out.O.emplace(std::move(Key), std::move(V));
        ws();
        if (Pos < T.size() && T[Pos] == ',') {
          ++Pos;
          continue;
        }
        break;
      }
      ws();
      if (Pos >= T.size() || T[Pos] != '}')
        return false;
      ++Pos;
      return true;
    }
    if (C == '[') {
      ++Pos;
      Out.K = Json::Arr;
      ws();
      if (Pos < T.size() && T[Pos] == ']') {
        ++Pos;
        return true;
      }
      while (true) {
        Json V;
        if (!value(V))
          return false;
        Out.A.push_back(std::move(V));
        ws();
        if (Pos < T.size() && T[Pos] == ',') {
          ++Pos;
          continue;
        }
        break;
      }
      ws();
      if (Pos >= T.size() || T[Pos] != ']')
        return false;
      ++Pos;
      return true;
    }
    if (C == '"') {
      Out.K = Json::Str;
      return string(Out.S);
    }
    if (C == 't')
      return lit("true", Out, Json::Bool, true);
    if (C == 'f')
      return lit("false", Out, Json::Bool, false);
    if (C == 'n')
      return lit("null", Out, Json::Null, false);
    // Number.
    size_t End = Pos;
    while (End < T.size() &&
           (std::isdigit(static_cast<unsigned char>(T[End])) || T[End] == '-' ||
            T[End] == '+' || T[End] == '.' || T[End] == 'e' || T[End] == 'E'))
      ++End;
    if (End == Pos)
      return false;
    Out.K = Json::Num;
    Out.N = std::strtod(T.c_str() + Pos, nullptr);
    Pos = End;
    return true;
  }

  const std::string &T;
  size_t Pos = 0;
};

//===----------------------------------------------------------------------===//
// Hex helpers
//===----------------------------------------------------------------------===//

std::string hex64(uint64_t V) {
  std::string S(16, '0');
  for (int I = 15; I >= 0; --I, V >>= 4)
    S[static_cast<size_t>(I)] = "0123456789abcdef"[V & 0xF];
  return S;
}

bool parseHex64(const std::string &S, size_t At, uint64_t &Out) {
  Out = 0;
  for (size_t I = 0; I < 16; ++I) {
    if (At + I >= S.size())
      return false;
    char C = S[At + I];
    Out <<= 4;
    if (C >= '0' && C <= '9')
      Out |= static_cast<uint64_t>(C - '0');
    else if (C >= 'a' && C <= 'f')
      Out |= static_cast<uint64_t>(C - 'a' + 10);
    else
      return false;
  }
  return true;
}

bool parseHash128(const std::string &Hex, support::Hash128 &Out) {
  return Hex.size() == 32 && parseHex64(Hex, 0, Out.Hi) &&
         parseHex64(Hex, 16, Out.Lo);
}

const char *statusName(uint8_t S) {
  switch (S) {
  case 0:
    return "active";
  case 1:
    return "stable";
  case 2:
    return "dead";
  case 3:
    return "faulted";
  }
  return "?";
}

Result<std::string> readFileBytes(const fs::path &P) {
  std::ifstream In(P, std::ios::binary);
  if (!In)
    return Result<std::string>::error(strf("cannot read ", P.string()));
  return std::string((std::istreambuf_iterator<char>(In)),
                     std::istreambuf_iterator<char>());
}

} // namespace

//===----------------------------------------------------------------------===//
// Manifest
//===----------------------------------------------------------------------===//

std::string manifestToJson(const ReplayBundle &B) {
  std::string J;
  J += "{\n";
  J += strf("  \"schema\": ", B.Schema, ",\n");
  J += strf("  \"program\": ", jstr(B.Program), ",\n");
  J += strf("  \"abi_version\": ", B.AbiVersion, ",\n");
  J += strf("  \"compiler_id\": ", jstr(B.CompilerId), ",\n");
  J += strf("  \"git_sha\": ", jstr(B.GitSha), ",\n");
  J += "  \"compile\": {";
  J += strf("\"engine\": ", jstr(B.EngineNative ? "native" : "interp"), ", ");
  J += strf("\"double_precision\": ", B.DoublePrecision ? "true" : "false",
            ", ");
  J += strf("\"contract\": ", B.EnableContract ? "true" : "false", ", ");
  J += strf("\"value_numbering\": ",
            B.EnableValueNumbering ? "true" : "false", ", ");
  J += strf("\"extra_cxx_flags\": ", jstr(B.ExtraCxxFlags), "},\n");
  J += "  \"run\": {";
  J += strf("\"max_supersteps\": ", B.MaxSupersteps, ", ");
  J += strf("\"workers\": ", B.NumWorkers, ", ");
  J += strf("\"block_size\": ", B.BlockSize, ", ");
  J += strf("\"scheduler\": ", jstr(B.SchedulerName), "},\n");
  J += "  \"policy\": {";
  J += strf("\"deadline_ns\": ", B.DeadlineNs, ", ");
  J += strf("\"max_faults\": ", B.MaxFaults, ", ");
  J += strf("\"watchdog_steps\": ", B.WatchdogSteps, ", ");
  J += strf("\"strict_fp\": ", B.StrictFp ? "true" : "false", ", ");
  J += "\"plan\": [";
  for (size_t I = 0; I < B.Plan.size(); ++I)
    J += strf(I ? ", " : "", "{\"strand\": ", B.Plan[I].Strand,
              ", \"step\": ", B.Plan[I].Step, ", \"kind\": ", B.Plan[I].Kind,
              "}");
  J += "]},\n";
  J += "  \"inputs\": [";
  for (size_t I = 0; I < B.Inputs.size(); ++I) {
    const RecordedInput &In = B.Inputs[I];
    J += strf(I ? ", " : "", "{\"name\": ", jstr(In.Name),
              ", \"text\": ", jstr(In.Text),
              ", \"file\": ", In.IsFile ? "true" : "false", "}");
  }
  J += "],\n";
  J += "  \"slots\": [";
  for (size_t I = 0; I < B.SlotNames.size(); ++I)
    J += strf(I ? ", " : "", jstr(B.SlotNames[I]));
  J += "],\n";
  J += strf("  \"outcome\": ", jstr(B.Outcome), ",\n");
  J += strf("  \"steps\": ", B.Steps, ",\n");
  J += strf("  \"num_strands\": ", B.NumStrands, ",\n");
  J += strf("  \"output_digest\": ", jstr(B.OutputDigest), ",\n");
  J += strf("  \"digest_entries\": ", B.Digests.Entries.size(), "\n");
  J += "}\n";
  return J;
}

Status manifestFromJson(const std::string &Text, ReplayBundle &B) {
  Json Root;
  if (!JsonParser(Text).parse(Root) || Root.K != Json::Obj)
    return Status::error("malformed bundle manifest");
  B.Schema = static_cast<int>(Root.num("schema", 0));
  if (B.Schema != ReplaySchemaVersion)
    return Status::error(strf("unsupported bundle schema ", B.Schema,
                              " (this build reads schema ",
                              ReplaySchemaVersion, ")"));
  B.Program = Root.str("program", "program");
  B.AbiVersion = static_cast<int>(Root.num("abi_version", 0));
  B.CompilerId = Root.str("compiler_id");
  B.GitSha = Root.str("git_sha");
  if (const Json *C = Root.get("compile")) {
    B.EngineNative = C->str("engine", "native") == "native";
    B.DoublePrecision = C->flag("double_precision");
    B.EnableContract = C->flag("contract", true);
    B.EnableValueNumbering = C->flag("value_numbering", true);
    B.ExtraCxxFlags = C->str("extra_cxx_flags");
  }
  if (const Json *R = Root.get("run")) {
    B.MaxSupersteps = static_cast<int>(R->num("max_supersteps", 1));
    B.NumWorkers = static_cast<int>(R->num("workers", 0));
    B.BlockSize = static_cast<int>(R->num("block_size", 0));
    B.SchedulerName = R->str("scheduler", "bsp");
  }
  if (const Json *P = Root.get("policy")) {
    B.DeadlineNs = P->num("deadline_ns", 0);
    B.MaxFaults = P->num("max_faults", -1);
    B.WatchdogSteps = static_cast<int>(P->num("watchdog_steps", 0));
    B.StrictFp = P->flag("strict_fp");
    B.Plan.clear();
    if (const Json *Pl = P->get("plan"); Pl && Pl->K == Json::Arr)
      for (const Json &E : Pl->A) {
        ReplayBundle::PlannedFaultRec F;
        F.Strand = static_cast<uint64_t>(E.num("strand", 0));
        F.Step = static_cast<int>(E.num("step", 0));
        F.Kind = static_cast<int>(E.num("kind", 0));
        B.Plan.push_back(F);
      }
  }
  B.Inputs.clear();
  if (const Json *In = Root.get("inputs"); In && In->K == Json::Arr)
    for (const Json &E : In->A) {
      RecordedInput RI;
      RI.Name = E.str("name");
      RI.Text = E.str("text");
      RI.IsFile = E.flag("file");
      B.Inputs.push_back(std::move(RI));
    }
  B.SlotNames.clear();
  if (const Json *Sl = Root.get("slots"); Sl && Sl->K == Json::Arr)
    for (const Json &E : Sl->A)
      B.SlotNames.push_back(E.S);
  B.Outcome = Root.str("outcome");
  B.Steps = static_cast<int>(Root.num("steps", 0));
  B.NumStrands = Root.num("num_strands", 0);
  B.OutputDigest = Root.str("output_digest");
  return Status::ok();
}

//===----------------------------------------------------------------------===//
// Digest and state streams
//===----------------------------------------------------------------------===//

std::string digestsToTsv(const DigestLog &L) {
  std::string Out;
  for (size_t I = 0; I < L.Entries.size(); ++I)
    Out += strf(I, '\t', L.Entries[I].hex(), '\n');
  return Out;
}

Status digestsFromTsv(const std::string &Text, DigestLog &L) {
  L.Entries.clear();
  for (const std::string &Line : splitString(Text, '\n')) {
    if (Line.empty())
      continue;
    std::vector<std::string> Cols = splitString(Line, '\t');
    support::Hash128 H;
    if (Cols.size() != 2 || !parseHash128(Cols[1], H))
      return Status::error(strf("malformed digest line: '", Line, "'"));
    L.Entries.push_back(H);
  }
  return Status::ok();
}

std::string statesToTsv(const DigestLog &L) {
  std::string Out;
  if (!L.HasStates)
    return Out;
  size_t Strands = static_cast<size_t>(L.NumStrands);
  size_t Slots = static_cast<size_t>(L.NumSlots);
  Out += strf("# ", L.Entries.size(), ' ', Strands, ' ', Slots, '\n');
  for (size_t E = 0; E < L.Entries.size(); ++E)
    for (size_t S = 0; S < Strands; ++S) {
      Out += strf(E, '\t', S, '\t',
                  static_cast<int>(L.Status[E * Strands + S]));
      for (size_t K = 0; K < Slots; ++K)
        Out += strf('\t', hex64(L.Slots[(E * Strands + S) * Slots + K]));
      Out += '\n';
    }
  return Out;
}

Status statesFromTsv(const std::string &Text, DigestLog &L) {
  std::vector<std::string> Lines = splitString(Text, '\n');
  size_t At = 0;
  while (At < Lines.size() && Lines[At].empty())
    ++At;
  if (At >= Lines.size() || Lines[At].empty() || Lines[At][0] != '#')
    return Status::error("state log missing '# entries strands slots' header");
  std::vector<std::string> Hdr = splitString(Lines[At].substr(1), ' ');
  std::vector<int64_t> Dims;
  for (const std::string &H : Hdr)
    if (!H.empty())
      Dims.push_back(std::atoll(H.c_str()));
  if (Dims.size() != 3 || Dims[0] < 0 || Dims[1] < 0 || Dims[2] < 0)
    return Status::error("malformed state log header");
  size_t Entries = static_cast<size_t>(Dims[0]);
  size_t Strands = static_cast<size_t>(Dims[1]);
  size_t Slots = static_cast<size_t>(Dims[2]);
  if (!L.Entries.empty() && L.Entries.size() != Entries)
    return Status::error("state log entry count disagrees with digests");
  L.NumStrands = Dims[1];
  L.NumSlots = Dims[2];
  L.Status.assign(Entries * Strands, 0);
  L.Slots.assign(Entries * Strands * Slots, 0);
  for (++At; At < Lines.size(); ++At) {
    const std::string &Line = Lines[At];
    if (Line.empty())
      continue;
    std::vector<std::string> Cols = splitString(Line, '\t');
    if (Cols.size() != 3 + Slots)
      return Status::error(strf("malformed state line: '", Line, "'"));
    size_t E = static_cast<size_t>(std::atoll(Cols[0].c_str()));
    size_t S = static_cast<size_t>(std::atoll(Cols[1].c_str()));
    if (E >= Entries || S >= Strands)
      return Status::error(strf("state line out of range: '", Line, "'"));
    L.Status[E * Strands + S] =
        static_cast<uint8_t>(std::atoi(Cols[2].c_str()));
    for (size_t K = 0; K < Slots; ++K)
      if (!parseHex64(Cols[3 + K], 0, L.Slots[(E * Strands + S) * Slots + K]))
        return Status::error(strf("malformed slot bits: '", Line, "'"));
  }
  L.HasStates = true;
  return Status::ok();
}

//===----------------------------------------------------------------------===//
// Bundle I/O
//===----------------------------------------------------------------------===//

Status writeBundle(const std::string &Dir, const ReplayBundle &B,
                   const std::map<std::string, std::string> &InputFiles) {
  std::error_code EC;
  fs::create_directories(Dir, EC);
  if (EC)
    return Status::error(strf("cannot create bundle directory ", Dir));
  // Inputs and streams first, manifest last: a reader that sees a manifest
  // sees a complete bundle (each file itself is published atomically).
  for (const auto &[Name, Bytes] : InputFiles) {
    Status S = support::writeFileAtomic((fs::path(Dir) / Name).string(), Bytes);
    if (!S.isOk())
      return S;
  }
  Status S = support::writeFileAtomic(
      (fs::path(Dir) / bundleSourceFile()).string(), B.Source);
  if (!S.isOk())
    return S;
  S = support::writeFileAtomic((fs::path(Dir) / bundleDigestsFile()).string(),
                               digestsToTsv(B.Digests));
  if (!S.isOk())
    return S;
  if (B.Digests.HasStates) {
    S = support::writeFileAtomic((fs::path(Dir) / bundleStatesFile()).string(),
                                 statesToTsv(B.Digests));
    if (!S.isOk())
      return S;
  }
  return support::writeFileAtomic(
      (fs::path(Dir) / bundleManifestFile()).string(), manifestToJson(B));
}

Result<ReplayBundle> readBundle(const std::string &Dir) {
  using RB = Result<ReplayBundle>;
  Result<std::string> Manifest = readFileBytes(fs::path(Dir) / bundleManifestFile());
  if (!Manifest.isOk())
    return RB::error(Manifest.message());
  ReplayBundle B;
  Status S = manifestFromJson(*Manifest, B);
  if (!S.isOk())
    return RB::error(S.message());
  Result<std::string> Src = readFileBytes(fs::path(Dir) / bundleSourceFile());
  if (!Src.isOk())
    return RB::error(Src.message());
  B.Source = *Src;
  Result<std::string> Dig = readFileBytes(fs::path(Dir) / bundleDigestsFile());
  if (!Dig.isOk())
    return RB::error(Dig.message());
  S = digestsFromTsv(*Dig, B.Digests);
  if (!S.isOk())
    return RB::error(S.message());
  B.Digests.NumStrands = B.NumStrands;
  B.Digests.NumSlots = static_cast<int64_t>(B.SlotNames.size());
  if (fs::exists(fs::path(Dir) / bundleStatesFile())) {
    Result<std::string> St = readFileBytes(fs::path(Dir) / bundleStatesFile());
    if (!St.isOk())
      return RB::error(St.message());
    S = statesFromTsv(*St, B.Digests);
    if (!S.isOk())
      return RB::error(S.message());
  }
  return B;
}

//===----------------------------------------------------------------------===//
// Divergence diagnosis
//===----------------------------------------------------------------------===//

Divergence diagnoseDivergence(const ReplayBundle &B,
                              const DigestLog &Replayed) {
  const DigestLog &Rec = B.Digests;
  Divergence D;
  size_t Common = std::min(Rec.Entries.size(), Replayed.Entries.size());
  size_t FirstBad = Common;
  for (size_t I = 0; I < Common; ++I)
    if (Rec.Entries[I] != Replayed.Entries[I]) {
      FirstBad = I;
      break;
    }
  if (FirstBad == Common) {
    if (Rec.Entries.size() == Replayed.Entries.size()) {
      D.Summary = strf("replay matches: all ", Rec.Entries.size(),
                       " digest entries identical");
      return D;
    }
    D.Diverged = true;
    D.Summary = strf("digest streams agree for ", Common,
                     " entries but lengths differ (recorded ",
                     Rec.Entries.size(), ", replayed ",
                     Replayed.Entries.size(),
                     "): superstep counts diverged");
    return D;
  }
  D.Diverged = true;
  D.Superstep = static_cast<int>(FirstBad);
  std::string Where =
      FirstBad == 0
          ? std::string("the post-initialize state (entry 0): inputs or "
                        "strand creation differ")
          : strf("superstep ", FirstBad);
  D.Summary = strf("first divergence at ", Where, "; recorded digest ",
                   Rec.Entries[FirstBad].hex(), ", replayed ",
                   Replayed.Entries[FirstBad].hex());

  // With state logs on both sides, pinpoint the strand and slot.
  if (!Rec.HasStates || !Replayed.HasStates ||
      Rec.NumStrands != Replayed.NumStrands ||
      Rec.NumSlots != Replayed.NumSlots)
    return D;
  size_t Strands = static_cast<size_t>(Rec.NumStrands);
  size_t Slots = static_cast<size_t>(Rec.NumSlots);
  size_t E = FirstBad;
  if ((E + 1) * Strands > Rec.Status.size() ||
      (E + 1) * Strands > Replayed.Status.size())
    return D;
  for (size_t S = 0; S < Strands; ++S) {
    uint8_t WantSt = Rec.Status[E * Strands + S];
    uint8_t GotSt = Replayed.Status[E * Strands + S];
    if (WantSt != GotSt) {
      D.Strand = static_cast<int64_t>(S);
      D.StatusDiffers = true;
      D.WantStatus = WantSt;
      D.GotStatus = GotSt;
      D.Summary += strf("; first divergent strand ", S, ": status ",
                        statusName(WantSt), " recorded vs ",
                        statusName(GotSt), " replayed");
      return D;
    }
    for (size_t K = 0; K < Slots; ++K) {
      uint64_t Want = Rec.Slots[(E * Strands + S) * Slots + K];
      uint64_t Got = Replayed.Slots[(E * Strands + S) * Slots + K];
      if (Want == Got)
        continue;
      D.Strand = static_cast<int64_t>(S);
      D.Slot = static_cast<int>(K);
      D.SlotName =
          K < B.SlotNames.size() ? B.SlotNames[K] : strf("slot", K);
      D.WantBits = Want;
      D.GotBits = Got;
      D.Summary += strf("; first divergent strand ", S, ", field '",
                        D.SlotName, "': recorded ",
                        std::bit_cast<double>(Want), " (bits ", hex64(Want),
                        "), replayed ", std::bit_cast<double>(Got),
                        " (bits ", hex64(Got), ")");
      return D;
    }
  }
  D.Summary += "; per-strand states are equal — digests differ only in "
               "stream length or a hashing mismatch";
  return D;
}

Result<std::string> dumpStrand(const ReplayBundle &B, int64_t Strand,
                               int Entry) {
  using RS = Result<std::string>;
  const DigestLog &L = B.Digests;
  if (!L.HasStates)
    return RS::error("bundle has no state log (recorded without "
                     "per-strand states)");
  size_t Strands = static_cast<size_t>(L.NumStrands);
  size_t Slots = static_cast<size_t>(L.NumSlots);
  if (Strand < 0 || static_cast<size_t>(Strand) >= Strands)
    return RS::error(strf("strand ", Strand, " out of range (", Strands,
                          " strands)"));
  if (Entry < 0 || static_cast<size_t>(Entry) >= L.Entries.size())
    return RS::error(strf("superstep entry ", Entry, " out of range (",
                          L.Entries.size(), " entries; 0 = post-initialize)"));
  size_t Base =
      (static_cast<size_t>(Entry) * Strands + static_cast<size_t>(Strand));
  std::string Out = strf(
      "strand ", Strand, " at ",
      Entry == 0 ? std::string("entry 0 (post-initialize)")
                 : strf("superstep ", Entry),
      ":\n  status = ", statusName(L.Status[Base]), "\n");
  for (size_t K = 0; K < Slots; ++K) {
    uint64_t Bits = L.Slots[Base * Slots + K];
    std::string Name =
        K < B.SlotNames.size() ? B.SlotNames[K] : strf("slot", K);
    Out += strf("  ", Name, " = ", std::bit_cast<double>(Bits), " (bits ",
                hex64(Bits), ")\n");
  }
  return Out;
}

} // namespace diderot::observe

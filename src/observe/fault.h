//===--- observe/fault.h - fault model and run verdicts ----------------------===//
//
// Part of the Diderot-C++ reproduction (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fault-containment vocabulary shared by both engines and both
/// schedulers: the kinds of per-strand faults the runtime traps, the
/// recorded StrandFault diagnostic, the deterministic FaultPlan injection
/// hook tests use to provoke faults at chosen (strand, superstep)
/// coordinates, and the RunOutcome verdict every run reports.
///
/// The paper's bulk-synchronous model assumes every strand update succeeds;
/// a production runtime cannot ("Compiling Diderot: From Tensor Calculus to
/// C" notes the real compiler's runtime checks for out-of-domain probes). A
/// trapped fault retires the strand into StrandStatus::Faulted instead of
/// killing the process, and the run keeps its bulk-synchronous discipline:
/// the fault is just another way for a strand to leave the work-list.
///
/// Deliberately STL-only and header-only, same constraint as recorder.h:
/// generated native translation units include it transitively through
/// runtime/scheduler.h. Faults cross the dlopen boundary through a flat
/// uint64 wire format (messages ride separately through ddr_fault_msg).
///
//===----------------------------------------------------------------------===//

#ifndef DIDEROT_OBSERVE_FAULT_H
#define DIDEROT_OBSERVE_FAULT_H

#include <cstdint>
#include <string>
#include <vector>

namespace diderot::observe {

/// Why a run ended. Converged is the paper's normal termination ("the
/// program executes until all of the strands are either stabilized or
/// dead"); the others are the fault-containment verdicts.
enum class RunOutcome : int {
  Converged = 0,  ///< every strand retired (stable, dead, or faulted)
  StepLimit = 1,  ///< MaxSupersteps elapsed with strands still active
  Deadline = 2,   ///< the wall-clock deadline expired
  Diverged = 3,   ///< watchdog: K supersteps with zero retirements
  FaultBudget = 4 ///< more strand faults than the policy tolerates
};

inline const char *runOutcomeName(RunOutcome O) {
  switch (O) {
  case RunOutcome::Converged:
    return "converged";
  case RunOutcome::StepLimit:
    return "step-limit";
  case RunOutcome::Deadline:
    return "deadline";
  case RunOutcome::Diverged:
    return "diverged";
  case RunOutcome::FaultBudget:
    return "fault-budget";
  }
  return "?";
}

/// What went wrong inside one strand update.
enum class FaultKind : int {
  Exception = 0, ///< a C++ exception (or interpreter runtime error) trapped
  NonFinite = 1, ///< strand state left non-finite (opt-in strict-fp check)
  Injected = 2   ///< provoked by a FaultPlan entry of kind Injected
};

inline const char *faultKindName(FaultKind K) {
  switch (K) {
  case FaultKind::Exception:
    return "exception";
  case FaultKind::NonFinite:
    return "non-finite";
  case FaultKind::Injected:
    return "injected";
  }
  return "?";
}

/// One trapped strand fault: which strand, where in the run, and what
/// happened. The strand itself is parked in StrandStatus::Faulted.
struct StrandFault {
  uint64_t Strand = 0; ///< strand index in the instance
  int Step = 0;        ///< superstep the fault was trapped in
  int Worker = 0;      ///< worker that executed the faulting update
  FaultKind Kind = FaultKind::Exception;
  uint64_t Ns = 0;     ///< ns since the run's policy clock started
  std::string Message; ///< diagnostic text (exception what(), etc.)
};

/// One planned injection: fault strand \p Strand at superstep \p Step with
/// kind \p Kind. Exception entries throw a real std::runtime_error through
/// the trap boundary so tests exercise the actual catch path.
struct PlannedFault {
  uint64_t Strand = 0;
  int Step = 0;
  FaultKind Kind = FaultKind::Injected;
};

/// Deterministic fault-injection schedule, consulted by the schedulers'
/// trap boundary before each update. Empty plans cost one branch per run.
struct FaultPlan {
  std::vector<PlannedFault> Faults;

  bool empty() const { return Faults.empty(); }

  /// Plan a fault for \p Strand at superstep \p Step.
  void at(uint64_t Strand, int Step, FaultKind Kind) {
    Faults.push_back({Strand, Step, Kind});
  }

  /// The planned fault for (\p Strand, \p Step), or null.
  const PlannedFault *match(uint64_t Strand, int Step) const {
    for (const PlannedFault &F : Faults)
      if (F.Strand == Strand && F.Step == Step)
        return &F;
    return nullptr;
  }
};

//===----------------------------------------------------------------------===//
// Flat wire formats (dlopen boundary)
//===----------------------------------------------------------------------===//
//
// A fault plan crosses into a generated shared object (ddr_set_fault_plan)
// as: [0] entry count, then records of 3: strand, step, kind.
// Recorded faults cross back (ddr_faults_read) as: [0] fault count, then
// records of 5: strand, step, worker, kind, ns. Messages are strings, so
// they ride separately through ddr_fault_msg(instance, index).

constexpr size_t PlanHeaderWords = 1;
constexpr size_t PlanRecordWords = 3;
constexpr size_t FaultHeaderWords = 1;
constexpr size_t FaultRecordWords = 5;

inline std::vector<uint64_t> flattenPlan(const FaultPlan &P) {
  std::vector<uint64_t> Out;
  Out.reserve(PlanHeaderWords + P.Faults.size() * PlanRecordWords);
  Out.push_back(P.Faults.size());
  for (const PlannedFault &F : P.Faults) {
    Out.push_back(F.Strand);
    Out.push_back(static_cast<uint64_t>(F.Step));
    Out.push_back(static_cast<uint64_t>(static_cast<int>(F.Kind)));
  }
  return Out;
}

/// Inverse of flattenPlan. Returns false on a short buffer or an
/// out-of-range fault kind.
inline bool unflattenPlan(const uint64_t *Data, size_t N, FaultPlan &P) {
  P.Faults.clear();
  if (N < PlanHeaderWords)
    return false;
  size_t Count = static_cast<size_t>(Data[0]);
  if (N < PlanHeaderWords + Count * PlanRecordWords)
    return false;
  const uint64_t *Rec = Data + PlanHeaderWords;
  P.Faults.reserve(Count);
  for (size_t I = 0; I < Count; ++I, Rec += PlanRecordWords) {
    if (Rec[2] > 2)
      return false;
    P.Faults.push_back({Rec[0], static_cast<int>(Rec[1]),
                        static_cast<FaultKind>(static_cast<int>(Rec[2]))});
  }
  return true;
}

inline std::vector<uint64_t> flattenFaults(const std::vector<StrandFault> &F) {
  std::vector<uint64_t> Out;
  Out.reserve(FaultHeaderWords + F.size() * FaultRecordWords);
  Out.push_back(F.size());
  for (const StrandFault &Flt : F) {
    Out.push_back(Flt.Strand);
    Out.push_back(static_cast<uint64_t>(Flt.Step));
    Out.push_back(static_cast<uint64_t>(Flt.Worker));
    Out.push_back(static_cast<uint64_t>(static_cast<int>(Flt.Kind)));
    Out.push_back(Flt.Ns);
  }
  return Out;
}

/// Inverse of flattenFaults (messages arrive separately). Returns false on
/// a short buffer or an out-of-range fault kind.
inline bool unflattenFaults(const uint64_t *Data, size_t N,
                            std::vector<StrandFault> &F) {
  F.clear();
  if (N < FaultHeaderWords)
    return false;
  size_t Count = static_cast<size_t>(Data[0]);
  if (N < FaultHeaderWords + Count * FaultRecordWords)
    return false;
  const uint64_t *Rec = Data + FaultHeaderWords;
  F.reserve(Count);
  for (size_t I = 0; I < Count; ++I, Rec += FaultRecordWords) {
    if (Rec[3] > 2)
      return false;
    StrandFault Flt;
    Flt.Strand = Rec[0];
    Flt.Step = static_cast<int>(Rec[1]);
    Flt.Worker = static_cast<int>(Rec[2]);
    Flt.Kind = static_cast<FaultKind>(static_cast<int>(Rec[3]));
    Flt.Ns = Rec[4];
    F.push_back(std::move(Flt));
  }
  return true;
}

} // namespace diderot::observe

#endif // DIDEROT_OBSERVE_FAULT_H

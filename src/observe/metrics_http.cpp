//===--- observe/metrics_http.cpp - embedded GET /metrics endpoint -----------===//
//
// Part of the Diderot-C++ reproduction (PLDI 2012).
//
// A thin routing layer over the shared support/http.h mini-server (where
// all socket code now lives): `diderotc --metrics-port` serves one
// resource, `GET /metrics` (with `/` accepted so a bare `curl
// localhost:PORT` works). The response body comes from a caller-supplied
// provider that snapshots the metrics registry (atomic loads only), so
// serving concurrently with a running superstep is race-free by
// construction.
//
//===----------------------------------------------------------------------===//

#include "observe/observe.h"

#include "support/http.h"

namespace diderot::observe {

struct MetricsServer::Impl {
  http::Server Server;
};

MetricsServer::MetricsServer() : I(new Impl) {}

MetricsServer::~MetricsServer() { stop(); }

int MetricsServer::port() const { return I->Server.port(); }

Status MetricsServer::start(int Port, Provider P) {
  if (!P)
    return Status::error("metrics server needs a provider");
  http::Server::Options O;
  O.HandlerThreads = 1; // scrapes are cheap and infrequent
  Status S = I->Server.start(
      Port,
      [Prov = std::move(P)](const http::Request &Req) -> http::Response {
        if (Req.Method == "GET" &&
            (Req.Path == "/metrics" || Req.Path == "/")) {
          http::Response R;
          R.ContentType = "text/plain; version=0.0.4; charset=utf-8";
          R.Body = Prov();
          return R;
        }
        return {404, "text/plain; charset=utf-8", "not found\n", {}};
      },
      O);
  if (!S.isOk())
    return Status::error("metrics server: " + S.message());
  return Status::ok();
}

void MetricsServer::stop() { I->Server.stop(); }

} // namespace diderot::observe

//===--- observe/metrics_http.cpp - embedded GET /metrics endpoint -----------===//
//
// Part of the Diderot-C++ reproduction (PLDI 2012).
//
// The one file in the tree with socket code: a deliberately tiny HTTP/1.0
// server for `diderotc --metrics-port`. One accept thread, one request per
// connection, loopback only, no keep-alive, no TLS — just enough for
// `curl localhost:PORT/metrics` or a Prometheus scrape of a long-running
// program. The response body comes from a caller-supplied provider that
// snapshots the metrics registry (atomic loads only), so serving concurrently
// with a running superstep is race-free by construction.
//
//===----------------------------------------------------------------------===//

#include "observe/observe.h"

#include <atomic>
#include <cstring>
#include <string>
#include <thread>

#if defined(__unix__) || defined(__APPLE__)
#define DIDEROT_HAVE_SOCKETS 1
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace diderot::observe {

struct MetricsServer::Impl {
  int ListenFd = -1;
  int Port = 0;
  std::atomic<bool> Quit{false};
  Provider Prov;
  std::thread Thread;
};

MetricsServer::MetricsServer() : I(new Impl) {}

MetricsServer::~MetricsServer() { stop(); }

int MetricsServer::port() const { return I->Port; }

#if DIDEROT_HAVE_SOCKETS

namespace {

void writeAll(int Fd, const char *Data, size_t Len) {
  size_t Off = 0;
  while (Off < Len) {
    ssize_t N = ::send(Fd, Data + Off, Len - Off, 0);
    if (N <= 0)
      return; // peer went away; nothing sensible to do
    Off += static_cast<size_t>(N);
  }
}

void respond(int Fd, const char *StatusLine, const std::string &Body) {
  std::string Hdr;
  Hdr += "HTTP/1.0 ";
  Hdr += StatusLine;
  Hdr += "\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
         "Content-Length: ";
  Hdr += std::to_string(Body.size());
  Hdr += "\r\nConnection: close\r\n\r\n";
  writeAll(Fd, Hdr.data(), Hdr.size());
  writeAll(Fd, Body.data(), Body.size());
}

/// True when the request line targets the metrics resource ("/" accepted
/// as a convenience so a bare `curl localhost:PORT` works too).
bool wantsMetrics(const char *Req) {
  const char *Sp = std::strchr(Req, ' ');
  if (!Sp || std::strncmp(Req, "GET ", 4) != 0)
    return false;
  const char *Path = Sp + 1;
  return std::strncmp(Path, "/metrics", 8) == 0 ||
         std::strncmp(Path, "/ ", 2) == 0;
}

} // namespace

Status MetricsServer::start(int Port, Provider P) {
  if (I->Thread.joinable())
    return Status::error("metrics server already running");
  if (!P)
    return Status::error("metrics server needs a provider");
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0)
    return Status::error("metrics server: socket() failed");
  int One = 1;
  ::setsockopt(Fd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  Addr.sin_port = htons(static_cast<uint16_t>(Port));
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    ::close(Fd);
    return Status::error("metrics server: cannot bind 127.0.0.1:" +
                         std::to_string(Port));
  }
  if (::listen(Fd, 16) < 0) {
    ::close(Fd);
    return Status::error("metrics server: listen() failed");
  }
  sockaddr_in Bound{};
  socklen_t BoundLen = sizeof(Bound);
  if (::getsockname(Fd, reinterpret_cast<sockaddr *>(&Bound), &BoundLen) == 0)
    I->Port = ntohs(Bound.sin_port);
  else
    I->Port = Port;
  I->ListenFd = Fd;
  I->Quit.store(false, std::memory_order_relaxed);
  I->Prov = std::move(P);
  Impl *Im = I.get();
  I->Thread = std::thread([Im] {
    while (!Im->Quit.load(std::memory_order_relaxed)) {
      int C = ::accept(Im->ListenFd, nullptr, nullptr);
      if (C < 0) {
        if (Im->Quit.load(std::memory_order_relaxed))
          return;
        continue; // transient accept error
      }
      char Req[1024] = {};
      ssize_t N = ::recv(C, Req, sizeof(Req) - 1, 0);
      if (N > 0 && wantsMetrics(Req))
        respond(C, "200 OK", Im->Prov());
      else
        respond(C, "404 Not Found", "not found\n");
      ::close(C);
    }
  });
  return Status::ok();
}

void MetricsServer::stop() {
  if (!I->Thread.joinable())
    return;
  I->Quit.store(true, std::memory_order_relaxed);
  // Unblock accept(): shutdown wakes it with an error on Linux; closing the
  // fd covers the platforms where it does not.
  ::shutdown(I->ListenFd, SHUT_RDWR);
  ::close(I->ListenFd);
  I->Thread.join();
  I->ListenFd = -1;
}

#else // !DIDEROT_HAVE_SOCKETS

Status MetricsServer::start(int, Provider) {
  return Status::error("metrics server: no socket support on this platform");
}

void MetricsServer::stop() {}

#endif

} // namespace diderot::observe

//===--- observe/observe.h - telemetry exporters -----------------------------===//
//
// Part of the Diderot-C++ reproduction (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Host-side exporters over observe::RunStats (see recorder.h for the
/// collection side):
///
///  * formatSummary  — human-readable per-superstep table, the thing
///                     `diderotc --stats` prints;
///  * statsJson      — machine-readable stats for the bench harness's
///                     BENCH_*.json files;
///  * chromeTrace    — Chrome-trace ("trace event format") JSON with one
///                     timeline row per worker, loadable in Perfetto or
///                     chrome://tracing.
///
//===----------------------------------------------------------------------===//

#ifndef DIDEROT_OBSERVE_OBSERVE_H
#define DIDEROT_OBSERVE_OBSERVE_H

#include <string>

#include "observe/recorder.h"

namespace diderot::observe {

/// Human-readable per-superstep summary (multi-line, trailing newline).
/// Shows, per superstep: strands updated / stabilized / died, blocks
/// claimed, and the span duration; ends with run-wide totals.
std::string formatSummary(const RunStats &R);

/// Machine-readable JSON object: run-level fields ("steps", "numWorkers",
/// "wallNs", totals) plus a "supersteps" array of per-step aggregates and a
/// "workers" array of per-worker span timelines.
std::string statsJson(const RunStats &R);

/// Chrome-trace JSON ({"traceEvents": [...]}): "M" metadata events naming
/// one thread row per worker, then one "X" complete event per (worker,
/// superstep) span with counters attached as args. Timestamps in
/// microseconds relative to run start.
std::string chromeTrace(const RunStats &R);

} // namespace diderot::observe

#endif // DIDEROT_OBSERVE_OBSERVE_H

//===--- observe/observe.h - telemetry exporters -----------------------------===//
//
// Part of the Diderot-C++ reproduction (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Host-side exporters over observe::RunStats (see recorder.h for the
/// collection side):
///
///  * formatSummary  — human-readable per-superstep table, the thing
///                     `diderotc --stats` prints;
///  * statsJson      — machine-readable stats for the bench harness's
///                     BENCH_*.json files;
///  * chromeTrace    — Chrome-trace ("trace event format") JSON with one
///                     timeline row per worker, loadable in Perfetto or
///                     chrome://tracing; strand lifecycle events appear as
///                     "i" instant events when collected;
///  * profileListing — annotated source listing with per-line cost counters
///                     (`diderotc --profile`);
///  * profileJson    — machine-readable per-line profile, embedding the
///                     source line text;
///  * lifecycleJson  — strand start/stabilize/die event log as JSON;
///  * prometheusText — the metrics registry in Prometheus text exposition
///                     format (`diderotc --metrics-out`, and the body served
///                     by the embedded `GET /metrics` endpoint);
///  * metricsJson    — the registry as a JSON object (merged into statsJson
///                     under the "metrics" key).
///
/// Also hosts the host-only live-monitoring pieces: deriveMetrics (the v4
/// ABI fallback that reconstructs step-level histograms from spans), the
/// process-RSS sampler, and the MetricsServer (a routing shim in
/// metrics_http.cpp over the shared support/http.h server, where all
/// socket code lives).
///
//===----------------------------------------------------------------------===//

#ifndef DIDEROT_OBSERVE_OBSERVE_H
#define DIDEROT_OBSERVE_OBSERVE_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "observe/profiler.h"
#include "observe/recorder.h"
#include "support/result.h"
#include "support/trace.h"

namespace diderot::observe {

/// Escape \p S for embedding inside a JSON string literal: quotes and
/// backslashes are backslash-escaped, control characters become \n \t \r
/// \b \f or \u00XX. Every runtime string routed into the JSON exporters
/// below must pass through here. Forwards to the shared diderot::jsonEscape
/// in support/strings.h — one escaping routine for the whole tree.
std::string jsonEscape(const std::string &S);

/// Human-readable per-superstep summary (multi-line, trailing newline).
/// Shows, per superstep: strands updated / stabilized / died, blocks
/// claimed, and the span duration; ends with run-wide totals.
std::string formatSummary(const RunStats &R);

/// Machine-readable JSON object: run-level fields ("steps", "numWorkers",
/// "wallNs", totals) plus a "supersteps" array of per-step aggregates and a
/// "workers" array of per-worker span timelines.
std::string statsJson(const RunStats &R);

/// Chrome-trace JSON ({"traceEvents": [...]}): "M" metadata events naming
/// one thread row per worker, then one "X" complete event per (worker,
/// superstep) span with counters attached as args. Timestamps in
/// microseconds relative to run start.
std::string chromeTrace(const RunStats &R);

/// Annotated source listing: every line of \p Source prefixed with its
/// per-class cost counters (probes, kernel evals, inside tests, tensor
/// ops), hottest lines marked. Lines with no profiled sites print blank
/// counter columns. \p Source may be empty, in which case only lines with
/// counts are listed by number.
std::string profileListing(const ProfileData &P, const std::string &Source);

/// Machine-readable profile JSON: {"enabled":..., "lines":[{"line":N,
/// "text":"...", "counts":{...}, "sites":{...}}, ...]} with per-class
/// totals. Source line text is embedded (json-escaped) when available.
std::string profileJson(const ProfileData &P, const std::string &Source);

/// Strand lifecycle event log as JSON: {"events":[{"strand":N,"step":N,
/// "kind":"start|stabilize|die","worker":N,"ns":N}, ...]}.
std::string lifecycleJson(const RunStats &R);

//===----------------------------------------------------------------------===//
// Request-trace exporters (docs/TRACING.md)
//===----------------------------------------------------------------------===//

/// One job's span tree (support/trace.h) as Chrome-trace JSON, loadable in
/// Perfetto: a top-level "traceId" key, "M" metadata events naming the
/// process after the job and the tid rows (0 = request spans, 1 + w = run
/// worker w), then one "X" complete event per span with its span/parent
/// ids and args attached. Timestamps are microseconds in the tree's own
/// clock domain.
std::string spanTreeChromeTrace(const tracing::SpanTree &T);

/// Merge recent jobs into one timeline: each tree becomes its own Chrome
/// "process" (pid = position + 1) named after its job and program, all on
/// the shared clock, so queue waits and overlapping runs line up visually.
std::string mergedChromeTrace(const std::vector<tracing::SpanTree> &Trees);

/// Attach a finished run's Recorder output to \p T as children of the run
/// span \p RunSpanId: one span per (worker, superstep) on the worker's tid
/// row, plus instant-like zero-length spans for trapped faults. All
/// RunStats timestamps are relative to run start and get shifted by
/// \p RunBeginNs into the tree's clock domain. Fresh span ids come from
/// \p Ids (injectable for golden tests).
void appendRunSpans(tracing::SpanTree &T, uint64_t RunSpanId,
                    uint64_t RunBeginNs, const RunStats &R,
                    tracing::IdSource &Ids);

/// Attach one "pool" span under the run span \p RunSpanId covering
/// [\p RunBeginNs, \p RunEndNs], carrying the persistent-pool counters of
/// a pooled-scheduler run (blocks stolen, park events, pool thread count,
/// worker count) as args. The numbers come from R.Metrics when the
/// registry was armed; with metrics off the span still marks the run as
/// pool-executed, with only the worker count attached.
void appendPoolSpan(tracing::SpanTree &T, uint64_t RunSpanId,
                    uint64_t RunBeginNs, uint64_t RunEndNs,
                    const RunStats &R, tracing::IdSource &Ids);

//===----------------------------------------------------------------------===//
// Metrics exposition
//===----------------------------------------------------------------------===//

/// Prometheus text exposition format (version 0.0.4): `# HELP`/`# TYPE`
/// lines, counter/gauge samples, and histograms with cumulative `le`
/// buckets at octave boundaries plus `_sum`/`_count`. Nanosecond-valued
/// metrics are exposed in seconds, per Prometheus convention.
std::string prometheusText(const MetricsData &D);

/// The registry as one JSON object: {"enabled":...,"counters":{...},
/// "gauges":{...},"histograms":{name:{"count","sum","min","max","mean",
/// "p50","p90","p99","buckets":[[index,count],...]},...}}. Time-valued
/// histograms keep raw nanoseconds here (the *_ns key names say so).
std::string metricsJson(const MetricsData &D);

/// Reconstruct a MetricsData from span-level RunStats: counters from the
/// totals, superstep wall / imbalance / updates histograms from the worker
/// spans. The graceful-degradation path for v4 native objects that predate
/// ddr_metrics_read — block-claim latency is the one histogram spans cannot
/// recover, so it stays empty.
MetricsData deriveMetrics(const RunStats &R);

/// Current resident set size of this process in bytes (via
/// /proc/self/statm; 0 where that is unavailable).
int64_t readProcessRssBytes();

/// Low-frequency background thread sampling process RSS, feeding the
/// diderot_process_rss_bytes gauge of live scrapes. bytes() is safe from
/// any thread.
class RssSampler {
public:
  RssSampler() = default;
  ~RssSampler();
  RssSampler(const RssSampler &) = delete;
  RssSampler &operator=(const RssSampler &) = delete;

  /// Take an immediate sample and start the sampler thread (no-op if
  /// already running).
  void start(int PeriodMs = 250);
  /// Stop and join the sampler thread (idempotent; the destructor calls it).
  void stop();
  int64_t bytes() const { return Rss.load(std::memory_order_relaxed); }

private:
  std::atomic<int64_t> Rss{0};
  bool Quit = false; // guarded by Mu
  std::mutex Mu;
  std::condition_variable Cv;
  std::thread T;
};

/// Tiny embedded HTTP endpoint serving `GET /metrics` (Prometheus text) for
/// long-running programs (`diderotc --metrics-port`). One request per
/// connection, loopback only, hardened request parsing (support/http.h).
/// The provider callback renders the body per request and must be
/// thread-safe (snapshot reads are).
class MetricsServer {
public:
  using Provider = std::function<std::string()>;

  MetricsServer();
  ~MetricsServer();
  MetricsServer(const MetricsServer &) = delete;
  MetricsServer &operator=(const MetricsServer &) = delete;

  /// Bind 127.0.0.1:\p Port (0 picks an ephemeral port, readable via
  /// port()) and start serving \p P. Fails with a Status if the socket
  /// cannot be bound.
  Status start(int Port, Provider P);
  /// The bound port (valid after a successful start).
  int port() const;
  /// Stop accepting and join the server thread (idempotent).
  void stop();

private:
  struct Impl;
  std::unique_ptr<Impl> I;
};

} // namespace diderot::observe

#endif // DIDEROT_OBSERVE_OBSERVE_H

//===--- observe/observe.h - telemetry exporters -----------------------------===//
//
// Part of the Diderot-C++ reproduction (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Host-side exporters over observe::RunStats (see recorder.h for the
/// collection side):
///
///  * formatSummary  — human-readable per-superstep table, the thing
///                     `diderotc --stats` prints;
///  * statsJson      — machine-readable stats for the bench harness's
///                     BENCH_*.json files;
///  * chromeTrace    — Chrome-trace ("trace event format") JSON with one
///                     timeline row per worker, loadable in Perfetto or
///                     chrome://tracing; strand lifecycle events appear as
///                     "i" instant events when collected;
///  * profileListing — annotated source listing with per-line cost counters
///                     (`diderotc --profile`);
///  * profileJson    — machine-readable per-line profile, embedding the
///                     source line text;
///  * lifecycleJson  — strand start/stabilize/die event log as JSON.
///
//===----------------------------------------------------------------------===//

#ifndef DIDEROT_OBSERVE_OBSERVE_H
#define DIDEROT_OBSERVE_OBSERVE_H

#include <string>

#include "observe/profiler.h"
#include "observe/recorder.h"

namespace diderot::observe {

/// Escape \p S for embedding inside a JSON string literal: quotes and
/// backslashes are backslash-escaped, control characters become \n \t \r
/// \b \f or \u00XX. Every runtime string routed into the JSON exporters
/// below must pass through here.
std::string jsonEscape(const std::string &S);

/// Human-readable per-superstep summary (multi-line, trailing newline).
/// Shows, per superstep: strands updated / stabilized / died, blocks
/// claimed, and the span duration; ends with run-wide totals.
std::string formatSummary(const RunStats &R);

/// Machine-readable JSON object: run-level fields ("steps", "numWorkers",
/// "wallNs", totals) plus a "supersteps" array of per-step aggregates and a
/// "workers" array of per-worker span timelines.
std::string statsJson(const RunStats &R);

/// Chrome-trace JSON ({"traceEvents": [...]}): "M" metadata events naming
/// one thread row per worker, then one "X" complete event per (worker,
/// superstep) span with counters attached as args. Timestamps in
/// microseconds relative to run start.
std::string chromeTrace(const RunStats &R);

/// Annotated source listing: every line of \p Source prefixed with its
/// per-class cost counters (probes, kernel evals, inside tests, tensor
/// ops), hottest lines marked. Lines with no profiled sites print blank
/// counter columns. \p Source may be empty, in which case only lines with
/// counts are listed by number.
std::string profileListing(const ProfileData &P, const std::string &Source);

/// Machine-readable profile JSON: {"enabled":..., "lines":[{"line":N,
/// "text":"...", "counts":{...}, "sites":{...}}, ...]} with per-class
/// totals. Source line text is embedded (json-escaped) when available.
std::string profileJson(const ProfileData &P, const std::string &Source);

/// Strand lifecycle event log as JSON: {"events":[{"strand":N,"step":N,
/// "kind":"start|stabilize|die","worker":N,"ns":N}, ...]}.
std::string lifecycleJson(const RunStats &R);

} // namespace diderot::observe

#endif // DIDEROT_OBSERVE_OBSERVE_H

//===--- src/observe/metrics.h - typed metrics registry ----------------------===//
//
// Part of the Diderot-C++ reproduction (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A typed metrics registry: `Counter`, `Gauge`, and a log-linear-bucketed
/// `Histogram` with quantile estimates, plus the value-type snapshot
/// (`MetricsData`) and its flat wire format for the `ddr_*` native ABI (v5).
///
/// Concurrency contract (the same happens-before structure Recorder
/// documents):
///
///  - Histogram *cells* are per-worker plain structs. A worker records into
///    its own cell with unsynchronized adds during a superstep; the
///    coordinator folds every cell into the merged totals at the superstep
///    barrier (`mergeCells`), after the completion barrier has ordered the
///    workers' writes before the coordinator's reads.
///  - The *merged* totals (and all counters/gauges) are relaxed atomics with
///    a single logical writer (the coordinator, or the RSS sampler for its
///    own gauge). Concurrent readers — the embedded `/metrics` endpoint, a
///    live `ddr_metrics_read` call — take `snapshot()`s that only load these
///    atomics, so live scrapes race with nothing.
///  - When the registry is not armed (`Metrics::start(_, false)`), the
///    scheduler hot paths see a null `Recorder::metrics()` and skip every
///    histogram/gauge touch; counters ride along with the spans Recorder
///    already commits, so the unarmed cost is unchanged.
///
/// This header is included by generated native translation units (via
/// recorder.h), so it must stay header-only and STL-only. Host-side code
/// (exposition formats, the RSS sampler, the HTTP endpoint) lives in
/// metrics.cpp / metrics_http.cpp behind declarations in observe.h.
///
//===----------------------------------------------------------------------===//

#ifndef DIDEROT_OBSERVE_METRICS_H
#define DIDEROT_OBSERVE_METRICS_H

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace diderot {
namespace observe {

//===----------------------------------------------------------------------===//
// Log-linear bucket geometry
//===----------------------------------------------------------------------===//

/// Sub-bucket resolution: each power-of-two octave is split into
/// 2^HistSubBits linear sub-buckets, bounding the relative quantile error at
/// 2^-HistSubBits (12.5%). Values below one full octave get exact unit
/// buckets.
constexpr int HistSubBits = 3;
constexpr int HistSubBuckets = 1 << HistSubBits; // 8

/// Buckets 0..7 are exact (value == index); octaves 3..63 contribute 8
/// sub-buckets each: (64 - 3) * 8 + 8 = 496 buckets cover all of uint64.
constexpr int NumHistBuckets = (64 - HistSubBits) * HistSubBuckets + HistSubBuckets;

/// Bucket index for a value: branch-free apart from the small-value fast
/// path. Monotone in V; every uint64 maps into [0, NumHistBuckets).
inline int histBucketIndex(uint64_t V) {
  if (V < static_cast<uint64_t>(HistSubBuckets))
    return static_cast<int>(V);
  int Exp = 63;
  while (!(V >> Exp))
    --Exp; // V >= 8, so Exp >= 3
  int Shift = Exp - HistSubBits;
  int Sub = static_cast<int>((V >> Shift) & (HistSubBuckets - 1));
  return ((Exp - HistSubBits + 1) << HistSubBits) + Sub;
}

/// Smallest value mapping to bucket \p Idx.
inline uint64_t histBucketLo(int Idx) {
  if (Idx < HistSubBuckets)
    return static_cast<uint64_t>(Idx);
  int Octave = Idx >> HistSubBits; // >= 1
  int Sub = Idx & (HistSubBuckets - 1);
  int Exp = Octave + HistSubBits - 1;
  return (uint64_t(1) << Exp) +
         (static_cast<uint64_t>(Sub) << (Exp - HistSubBits));
}

/// Largest value mapping to bucket \p Idx (inclusive upper bound).
inline uint64_t histBucketHi(int Idx) {
  if (Idx < HistSubBuckets)
    return static_cast<uint64_t>(Idx);
  int Octave = Idx >> HistSubBits;
  int Exp = Octave + HistSubBits - 1;
  return histBucketLo(Idx) + (uint64_t(1) << (Exp - HistSubBits)) - 1;
}

//===----------------------------------------------------------------------===//
// Metric identifiers and descriptors
//===----------------------------------------------------------------------===//

// Fixed enumerations rather than a string-keyed map: the set of runtime
// metrics is small and closed, IDs survive the flat ABI unchanged, and the
// hot path indexes an array instead of hashing a name.

enum MetricCounterId : int {
  McUpdated = 0,    ///< strand update-method invocations
  McStabilized,     ///< strands stabilized
  McDied,           ///< strands died
  McBlocksClaimed,  ///< work-list blocks claimed by workers
  McLockAcquires,   ///< work-list lock acquisitions
  McBarrierWaits,   ///< barrier arrivals (2 per worker per superstep)
  McSupersteps,     ///< supersteps executed
  McFaults,         ///< strand faults trapped
  McBlocksStolen,   ///< blocks taken from another worker's deque (pooled)
  McPoolParks,      ///< pool worker park events (one per worker per run)
  NumMetricCounters
};

enum MetricGaugeId : int {
  MgLiveStrands = 0, ///< active strands at the latest superstep boundary
  MgWorklistDepth,   ///< blocks on the work list at the latest superstep
  MgProcessRss,      ///< process resident set size in bytes (host-sampled)
  MgWorkers,         ///< configured worker count (0 = sequential)
  MgPoolThreads,     ///< threads alive in the persistent strand pool
  NumMetricGauges
};

enum MetricHistId : int {
  MhStepWallNs = 0, ///< superstep wall time (coordinator-observed), ns
  MhImbalanceNs,    ///< max-min per-worker span duration within a step, ns
  MhClaimNs,        ///< work-list block claim (lock acquisition) latency, ns
  MhUpdatesPerStep, ///< strand updates executed per superstep
  NumMetricHists
};

/// Exposition metadata for one metric.
struct MetricDesc {
  const char *PromName; ///< Prometheus name (diderot_* with unit suffix)
  const char *JsonName; ///< key in the stats JSON "metrics" object
  const char *Help;     ///< one-line HELP text
  bool Seconds;         ///< stored as ns, exposed as seconds in Prometheus
};

inline const MetricDesc &counterDesc(int Id) {
  static const MetricDesc Descs[NumMetricCounters] = {
      {"diderot_strand_updates_total", "strand_updates_total",
       "Strand update-method invocations.", false},
      {"diderot_strand_stabilized_total", "strand_stabilized_total",
       "Strands that reached stabilize.", false},
      {"diderot_strand_died_total", "strand_died_total",
       "Strands that executed die.", false},
      {"diderot_worklist_blocks_claimed_total", "worklist_blocks_claimed_total",
       "Work-list blocks claimed by workers.", false},
      {"diderot_worklist_lock_acquires_total", "worklist_lock_acquires_total",
       "Work-list lock acquisitions.", false},
      {"diderot_barrier_waits_total", "barrier_waits_total",
       "Barrier arrivals (two per worker per superstep).", false},
      {"diderot_supersteps_total", "supersteps_total",
       "Bulk-synchronous supersteps executed.", false},
      {"diderot_strand_faults_total", "strand_faults_total",
       "Strand faults trapped by the runtime.", false},
      {"diderot_blocks_stolen_total", "blocks_stolen_total",
       "Work-list blocks stolen from another worker's deque (pooled "
       "scheduler).", false},
      {"diderot_pool_parks_total", "pool_parks_total",
       "Persistent-pool worker park events (one per worker per pooled "
       "run).", false},
  };
  return Descs[Id];
}

inline const MetricDesc &gaugeDesc(int Id) {
  static const MetricDesc Descs[NumMetricGauges] = {
      {"diderot_live_strands", "live_strands",
       "Active strands at the latest superstep boundary.", false},
      {"diderot_worklist_depth", "worklist_depth",
       "Blocks on the work list at the latest superstep boundary.", false},
      {"diderot_process_rss_bytes", "process_rss_bytes",
       "Process resident set size in bytes.", false},
      {"diderot_workers", "workers",
       "Configured worker count (0 = sequential scheduler).", false},
      {"diderot_pool_threads", "pool_threads",
       "Threads alive in the persistent strand pool.", false},
  };
  return Descs[Id];
}

inline const MetricDesc &histDesc(int Id) {
  static const MetricDesc Descs[NumMetricHists] = {
      {"diderot_superstep_wall_seconds", "superstep_wall_ns",
       "Superstep wall time.", true},
      {"diderot_worker_imbalance_seconds", "worker_imbalance_ns",
       "Spread (max - min) of per-worker span durations within a superstep.",
       true},
      {"diderot_worklist_claim_seconds", "worklist_claim_ns",
       "Work-list block claim (lock acquisition) latency.", true},
      {"diderot_strand_updates_per_superstep", "updates_per_superstep",
       "Strand updates executed per superstep.", false},
  };
  return Descs[Id];
}

//===----------------------------------------------------------------------===//
// Snapshot value types
//===----------------------------------------------------------------------===//

/// Immutable histogram snapshot: totals plus the sparse nonzero buckets,
/// sorted by bucket index.
struct HistData {
  uint64_t Count = 0;
  uint64_t Sum = 0;
  uint64_t Min = 0; ///< 0 when Count == 0
  uint64_t Max = 0;
  std::vector<std::pair<uint32_t, uint64_t>> Buckets; ///< (index, count)

  double mean() const {
    return Count ? static_cast<double>(Sum) / static_cast<double>(Count) : 0.0;
  }

  /// Rank-based quantile with linear interpolation inside the selected
  /// bucket, clamped to the exact observed [Min, Max]. Error is bounded by
  /// the bucket width (<= 12.5% relative for values >= 8).
  double quantile(double Q) const {
    if (Count == 0)
      return 0.0;
    if (Q <= 0.0)
      return static_cast<double>(Min);
    if (Q >= 1.0)
      return static_cast<double>(Max);
    double Target = Q * static_cast<double>(Count);
    uint64_t Cum = 0;
    for (const auto &[Idx, C] : Buckets) {
      double Prev = static_cast<double>(Cum);
      Cum += C;
      if (static_cast<double>(Cum) >= Target) {
        double Lo = static_cast<double>(histBucketLo(static_cast<int>(Idx)));
        double Hi =
            static_cast<double>(histBucketHi(static_cast<int>(Idx))) + 1.0;
        double Frac = C ? (Target - Prev) / static_cast<double>(C) : 0.0;
        double V = Lo + Frac * (Hi - Lo);
        if (V < static_cast<double>(Min))
          V = static_cast<double>(Min);
        if (V > static_cast<double>(Max))
          V = static_cast<double>(Max);
        return V;
      }
    }
    return static_cast<double>(Max);
  }
};

/// Value-type snapshot of the whole registry: what exporters format, what
/// the flat ABI carries, and what `RunStats::Metrics` stores.
struct MetricsData {
  bool Enabled = false;
  uint64_t Counters[NumMetricCounters] = {};
  int64_t Gauges[NumMetricGauges] = {};
  HistData Hists[NumMetricHists];
};

//===----------------------------------------------------------------------===//
// Live registry
//===----------------------------------------------------------------------===//

/// Monotone counter. Relaxed atomic adds: totals only, never used for
/// synchronization (the scheduler barriers provide the ordering).
class Counter {
public:
  void add(uint64_t N) { V.fetch_add(N, std::memory_order_relaxed); }
  uint64_t value() const { return V.load(std::memory_order_relaxed); }
  void reset() { V.store(0, std::memory_order_relaxed); }

private:
  std::atomic<uint64_t> V{0};
};

/// Point-in-time gauge. Single logical writer per gauge; concurrent readers.
class Gauge {
public:
  void set(int64_t N) { V.store(N, std::memory_order_relaxed); }
  int64_t value() const { return V.load(std::memory_order_relaxed); }
  void reset() { V.store(0, std::memory_order_relaxed); }

private:
  std::atomic<int64_t> V{0};
};

/// One worker's private histogram shard: plain (non-atomic) fields, written
/// only by the owning worker between barriers.
struct HistCell {
  uint64_t Count = 0;
  uint64_t Sum = 0;
  uint64_t Min = ~uint64_t(0);
  uint64_t Max = 0;
  uint64_t Buckets[NumHistBuckets] = {};

  void record(uint64_t V) {
    ++Count;
    Sum += V;
    if (V < Min)
      Min = V;
    if (V > Max)
      Max = V;
    ++Buckets[histBucketIndex(V)];
  }

  void clear() { *this = HistCell(); }
};

/// Log-linear histogram: per-worker cells for hot-path recording, merged
/// into atomic totals at superstep barriers, snapshot-readable at any time.
class Histogram {
public:
  /// Reset the merged totals and size the per-worker cells (0 disables
  /// sharded recording; only coordinator-side record() remains valid).
  void start(int NumCells) {
    Cells.assign(static_cast<size_t>(NumCells < 0 ? 0 : NumCells), HistCell());
    MCount.store(0, std::memory_order_relaxed);
    MSum.store(0, std::memory_order_relaxed);
    MMin.store(~uint64_t(0), std::memory_order_relaxed);
    MMax.store(0, std::memory_order_relaxed);
    for (auto &B : MBuckets)
      B.store(0, std::memory_order_relaxed);
  }

  /// The calling worker's private shard. Valid worker indices only; no
  /// bounds check on the hot path.
  HistCell &cell(int W) { return Cells[static_cast<size_t>(W)]; }

  /// Record directly into the merged totals. Single-writer (coordinator or
  /// host code between runs); safe against concurrent snapshot() readers.
  void record(uint64_t V) {
    MCount.fetch_add(1, std::memory_order_relaxed);
    MSum.fetch_add(V, std::memory_order_relaxed);
    if (V < MMin.load(std::memory_order_relaxed))
      MMin.store(V, std::memory_order_relaxed);
    if (V > MMax.load(std::memory_order_relaxed))
      MMax.store(V, std::memory_order_relaxed);
    MBuckets[histBucketIndex(V)].fetch_add(1, std::memory_order_relaxed);
  }

  /// Fold every worker cell into the merged totals and clear the cells.
  /// Coordinator-only, called after a completion barrier so the workers'
  /// plain writes happen-before these reads.
  void mergeCells() {
    for (HistCell &C : Cells) {
      if (C.Count == 0)
        continue;
      MCount.fetch_add(C.Count, std::memory_order_relaxed);
      MSum.fetch_add(C.Sum, std::memory_order_relaxed);
      if (C.Min < MMin.load(std::memory_order_relaxed))
        MMin.store(C.Min, std::memory_order_relaxed);
      if (C.Max > MMax.load(std::memory_order_relaxed))
        MMax.store(C.Max, std::memory_order_relaxed);
      for (int B = 0; B < NumHistBuckets; ++B)
        if (C.Buckets[B])
          MBuckets[B].fetch_add(C.Buckets[B], std::memory_order_relaxed);
      C.clear();
    }
  }

  /// Snapshot the merged totals (atomic loads only — never touches Cells,
  /// so it is safe concurrently with worker recording).
  void snapshot(HistData &Out) const {
    Out.Count = MCount.load(std::memory_order_relaxed);
    Out.Sum = MSum.load(std::memory_order_relaxed);
    uint64_t Mn = MMin.load(std::memory_order_relaxed);
    Out.Min = Out.Count ? Mn : 0;
    Out.Max = MMax.load(std::memory_order_relaxed);
    Out.Buckets.clear();
    for (int B = 0; B < NumHistBuckets; ++B) {
      uint64_t C = MBuckets[B].load(std::memory_order_relaxed);
      if (C)
        Out.Buckets.emplace_back(static_cast<uint32_t>(B), C);
    }
  }

private:
  std::vector<HistCell> Cells;
  std::atomic<uint64_t> MCount{0};
  std::atomic<uint64_t> MSum{0};
  std::atomic<uint64_t> MMin{~uint64_t(0)};
  std::atomic<uint64_t> MMax{0};
  std::array<std::atomic<uint64_t>, NumHistBuckets> MBuckets{};
};

/// The registry: one instance per Recorder (so one per program instance).
/// Counters are always live (Recorder's run totals are views over them);
/// gauges and histograms are recorded only when armed.
class Metrics {
public:
  /// Reset everything for a new run. \p NumWorkers sizes the per-worker
  /// histogram cells (0 = sequential still gets one cell) and fills the
  /// workers gauge; \p Arm enables gauge/histogram recording.
  void start(int NumWorkers, bool Arm) {
    Armed = Arm;
    for (Counter &C : Counters)
      C.reset();
    for (Gauge &G : Gauges)
      G.reset();
    int Cells = Arm ? (NumWorkers < 1 ? 1 : NumWorkers) : 0;
    for (Histogram &H : Hists)
      H.start(Cells);
    if (Arm)
      Gauges[MgWorkers].set(NumWorkers < 0 ? 0 : NumWorkers);
  }

  bool armed() const { return Armed; }

  Counter &counter(MetricCounterId Id) { return Counters[Id]; }
  Gauge &gauge(MetricGaugeId Id) { return Gauges[Id]; }
  Histogram &hist(MetricHistId Id) { return Hists[Id]; }

  /// Fold all per-worker histogram cells (coordinator, at a barrier).
  void mergeCells() {
    for (Histogram &H : Hists)
      H.mergeCells();
  }

  /// Atomic-loads-only snapshot; safe concurrently with a running step.
  MetricsData snapshot() const {
    MetricsData D;
    D.Enabled = Armed;
    for (int I = 0; I < NumMetricCounters; ++I)
      D.Counters[I] = Counters[I].value();
    for (int I = 0; I < NumMetricGauges; ++I)
      D.Gauges[I] = Gauges[I].value();
    for (int I = 0; I < NumMetricHists; ++I)
      Hists[I].snapshot(D.Hists[I]);
    return D;
  }

private:
  bool Armed = false;
  Counter Counters[NumMetricCounters];
  Gauge Gauges[NumMetricGauges];
  Histogram Hists[NumMetricHists];
};

//===----------------------------------------------------------------------===//
// Flat wire format (ddr_metrics_read, ABI v5)
//===----------------------------------------------------------------------===//
//
//   [0]                enabled (0/1)
//   [1] [2] [3]        counter / gauge / histogram section lengths
//   [4 ..]             counter values
//   then               gauge values (two's-complement in uint64)
//   then per histogram: count, sum, min, max, nbuckets,
//                       nbuckets x (bucket index, bucket count)
//
// Section lengths make the format self-describing: a host linked against a
// different metric set reads the overlap and skips the rest.

constexpr size_t MetricsHeaderWords = 4;
constexpr size_t MetricsHistFixedWords = 5;

inline std::vector<uint64_t> flattenMetrics(const MetricsData &D) {
  std::vector<uint64_t> Out;
  Out.reserve(MetricsHeaderWords + NumMetricCounters + NumMetricGauges +
              NumMetricHists * (MetricsHistFixedWords + 16));
  Out.push_back(D.Enabled ? 1 : 0);
  Out.push_back(NumMetricCounters);
  Out.push_back(NumMetricGauges);
  Out.push_back(NumMetricHists);
  for (int I = 0; I < NumMetricCounters; ++I)
    Out.push_back(D.Counters[I]);
  for (int I = 0; I < NumMetricGauges; ++I)
    Out.push_back(static_cast<uint64_t>(D.Gauges[I]));
  for (int I = 0; I < NumMetricHists; ++I) {
    const HistData &H = D.Hists[I];
    Out.push_back(H.Count);
    Out.push_back(H.Sum);
    Out.push_back(H.Min);
    Out.push_back(H.Max);
    Out.push_back(H.Buckets.size());
    for (const auto &[Idx, C] : H.Buckets) {
      Out.push_back(Idx);
      Out.push_back(C);
    }
  }
  return Out;
}

/// Inverse of flattenMetrics. Tolerates a peer with more or fewer metrics
/// per section (reads the overlap, skips extras). Returns false on a
/// truncated or malformed buffer, leaving \p Out default-initialized.
inline bool unflattenMetrics(const uint64_t *Data, size_t Len,
                             MetricsData &Out) {
  Out = MetricsData();
  if (!Data || Len < MetricsHeaderWords)
    return false;
  const uint64_t NC = Data[1], NG = Data[2], NH = Data[3];
  size_t P = MetricsHeaderWords;
  if (Len - P < NC + NG)
    return false;
  for (uint64_t I = 0; I < NC; ++I, ++P)
    if (I < NumMetricCounters)
      Out.Counters[I] = Data[P];
  for (uint64_t I = 0; I < NG; ++I, ++P)
    if (I < NumMetricGauges)
      Out.Gauges[I] = static_cast<int64_t>(Data[P]);
  for (uint64_t I = 0; I < NH; ++I) {
    if (Len - P < MetricsHistFixedWords)
      return false;
    HistData H;
    H.Count = Data[P + 0];
    H.Sum = Data[P + 1];
    H.Min = Data[P + 2];
    H.Max = Data[P + 3];
    uint64_t NB = Data[P + 4];
    P += MetricsHistFixedWords;
    if (NB > (Len - P) / 2)
      return false;
    H.Buckets.reserve(static_cast<size_t>(NB));
    for (uint64_t B = 0; B < NB; ++B, P += 2)
      H.Buckets.emplace_back(static_cast<uint32_t>(Data[P]), Data[P + 1]);
    if (I < NumMetricHists)
      Out.Hists[I] = std::move(H);
  }
  Out.Enabled = Data[0] != 0;
  return true;
}

} // namespace observe
} // namespace diderot

#endif // DIDEROT_OBSERVE_METRICS_H

//===--- observe/digest.h - canonical superstep state digests ----------------===//
//
// Part of the Diderot-C++ reproduction (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The canonical form both engines hash when a run is recorded for replay
/// (docs/REPLAY.md). Per superstep, a 128-bit FNV-1a digest is taken over
/// every strand in index order: one status byte, then each state slot as
/// the bit pattern of its value converted to double (NaNs collapsed to one
/// quiet-NaN pattern so an interp/native pair that both produce NaN — with
/// possibly different payload bits — still digest equal). Ints and bools
/// are cast to double before hashing, matching the native engine's scalar
/// slot layout, so the interpreter's RtVal flattening and the generated
/// code's strandSlotValue() produce bit-identical streams.
///
/// Entry 0 is the post-initialize() state (divergence there means inputs or
/// strand creation differ); entry k (k >= 1) is the state after superstep
/// k. A separate final-output digest covers getOutput() of every output.
///
/// Deliberately STL-only and header-only: generated native translation
/// units include it through runtime/native_prelude.h (same constraint as
/// observe/recorder.h). The bundle reader/writer lives host-side in
/// observe/replay.h.
///
//===----------------------------------------------------------------------===//

#ifndef DIDEROT_OBSERVE_DIGEST_H
#define DIDEROT_OBSERVE_DIGEST_H

#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include "support/hash.h"

namespace diderot::observe {

/// The bit pattern hashed for one double value. All NaNs collapse to the
/// standard quiet NaN; -0.0 and +0.0 keep distinct patterns (both engines
/// compute them the same way, and the distinction is real signal).
inline uint64_t canonicalBits(double V) {
  if (std::isnan(V))
    return 0x7FF8000000000000ULL;
  uint64_t B;
  std::memcpy(&B, &V, sizeof(B));
  return B;
}

/// Streaming hasher for one superstep's canonical form. Per strand, in
/// strand-index order: status(<byte>) once, then slot(<value>) for every
/// state slot in slot order. Both engines drive this class so the byte
/// stream — and therefore the digest — is identical by construction.
class StrandStateHasher {
public:
  void status(uint8_t S) { H.update(&S, 1); }
  void slot(double V) {
    uint64_t B = canonicalBits(V);
    unsigned char Bytes[8];
    for (int I = 0; I < 8; ++I, B >>= 8)
      Bytes[I] = static_cast<unsigned char>(B & 0xFF);
    H.update(Bytes, 8);
  }
  support::Hash128 digest() const { return H.digest(); }

private:
  support::Fnv128 H;
};

/// Everything a digest-armed run captures. Entries[0] = post-init,
/// Entries[k] = after superstep k. When the state log is armed too
/// (HasStates), Status and Slots hold the full canonicalized per-strand
/// state for every entry — Status[e * NumStrands + s] and
/// Slots[(e * NumStrands + s) * NumSlots + k] — powering first-divergent-
/// strand diagnosis and --dump-strand.
struct DigestLog {
  int64_t NumStrands = 0;
  int64_t NumSlots = 0;
  std::vector<support::Hash128> Entries;
  bool HasStates = false;
  std::vector<uint8_t> Status; ///< per-entry per-strand status bytes
  std::vector<uint64_t> Slots; ///< per-entry per-strand canonical slot bits

  void clear() {
    NumStrands = NumSlots = 0;
    Entries.clear();
    HasStates = false;
    Status.clear();
    Slots.clear();
  }
  size_t entries() const { return Entries.size(); }
};

//===----------------------------------------------------------------------===//
// Flat wire format (ddr_digest_read / ddr_state_read, ABI v7)
//===----------------------------------------------------------------------===//
//
// Digest stream: [0] entry count, then (Hi, Lo) per entry.
// State log: [0] entry count [1] strands [2] slots, then per entry, per
// strand: 1 status word + NumSlots canonical-bit words.

inline std::vector<uint64_t> flattenDigests(const DigestLog &L) {
  std::vector<uint64_t> Out;
  Out.reserve(1 + L.Entries.size() * 2);
  Out.push_back(L.Entries.size());
  for (const support::Hash128 &E : L.Entries) {
    Out.push_back(E.Hi);
    Out.push_back(E.Lo);
  }
  return Out;
}

/// Inverse of flattenDigests; fills only the Entries. Returns false when
/// \p N is inconsistent with the header.
inline bool unflattenDigests(const uint64_t *Data, size_t N, DigestLog &L) {
  if (N < 1)
    return false;
  size_t Count = static_cast<size_t>(Data[0]);
  if (N < 1 + Count * 2)
    return false;
  L.Entries.clear();
  L.Entries.reserve(Count);
  for (size_t I = 0; I < Count; ++I)
    L.Entries.push_back({Data[1 + I * 2], Data[2 + I * 2]});
  return true;
}

inline std::vector<uint64_t> flattenStates(const DigestLog &L) {
  std::vector<uint64_t> Out;
  size_t Entries = L.Entries.size();
  size_t Strands = static_cast<size_t>(L.NumStrands);
  size_t Slots = static_cast<size_t>(L.NumSlots);
  Out.reserve(3 + Entries * Strands * (1 + Slots));
  Out.push_back(Entries);
  Out.push_back(Strands);
  Out.push_back(Slots);
  for (size_t E = 0; E < Entries; ++E)
    for (size_t S = 0; S < Strands; ++S) {
      Out.push_back(L.Status[E * Strands + S]);
      for (size_t K = 0; K < Slots; ++K)
        Out.push_back(L.Slots[(E * Strands + S) * Slots + K]);
    }
  return Out;
}

/// Inverse of flattenStates; fills NumStrands/NumSlots/Status/Slots and
/// sets HasStates. The entry count must match L.Entries when already
/// populated (digest stream read first). Returns false on inconsistency.
inline bool unflattenStates(const uint64_t *Data, size_t N, DigestLog &L) {
  if (N < 3)
    return false;
  size_t Entries = static_cast<size_t>(Data[0]);
  size_t Strands = static_cast<size_t>(Data[1]);
  size_t Slots = static_cast<size_t>(Data[2]);
  size_t Per = Strands * (1 + Slots); // words per entry
  if (Strands != 0 && Per / Strands != 1 + Slots)
    return false; // multiplication overflowed
  if (Per != 0 && Entries > (N - 3) / Per)
    return false;
  if (N < 3 + Entries * Per)
    return false;
  if (!L.Entries.empty() && L.Entries.size() != Entries)
    return false;
  L.NumStrands = static_cast<int64_t>(Strands);
  L.NumSlots = static_cast<int64_t>(Slots);
  L.Status.assign(Entries * Strands, 0);
  L.Slots.assign(Entries * Strands * Slots, 0);
  const uint64_t *P = Data + 3;
  for (size_t E = 0; E < Entries; ++E)
    for (size_t S = 0; S < Strands; ++S) {
      L.Status[E * Strands + S] = static_cast<uint8_t>(*P++);
      for (size_t K = 0; K < Slots; ++K)
        L.Slots[(E * Strands + S) * Slots + K] = *P++;
    }
  L.HasStates = true;
  return true;
}

} // namespace diderot::observe

#endif // DIDEROT_OBSERVE_DIGEST_H

//===--- observe/trace_spans.cpp - request-trace exporters ------------------===//
//
// Part of the Diderot-C++ reproduction (PLDI 2012).
//
// Chrome-trace JSON over the request-span trees of support/trace.h, and
// the bridge that re-parents a run's Recorder spans (supersteps, worker
// blocks, faults) under the job's run span. Kept separate from export.cpp
// so the TSan build of the tracer (trace_tsan) can compile exactly the
// tracing translation units.
//
//===----------------------------------------------------------------------===//

#include "observe/observe.h"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>

#include "support/strings.h"

namespace diderot::observe {

namespace {

void appendf(std::string &Out, const char *Fmt, ...) {
  char Buf[256];
  va_list Ap;
  va_start(Ap, Fmt);
  int N = std::vsnprintf(Buf, sizeof(Buf), Fmt, Ap);
  va_end(Ap);
  if (N > 0)
    Out.append(Buf, static_cast<size_t>(N) < sizeof(Buf)
                        ? static_cast<size_t>(N)
                        : sizeof(Buf) - 1);
}

/// Emit the "M" process/thread naming events for tree \p T as pid \p Pid.
/// \p First tracks whether a comma is needed before the next event.
void emitTreeMeta(std::string &Out, const tracing::SpanTree &T, int Pid,
                  bool &First) {
  std::string PName = T.Job.empty() ? std::string("request") : "job " + T.Job;
  if (!T.Program.empty())
    PName += " (" + T.Program + ")";
  appendf(Out,
          "%s{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":0,"
          "\"args\":{\"name\":\"%s\"}}",
          First ? "" : ",", Pid, jsonEscape(PName).c_str());
  First = false;
  // Name only the rows that exist: tid 0 always, worker rows when any span
  // uses them.
  int MaxTid = 0;
  for (const tracing::Span &S : T.Spans)
    MaxTid = S.Tid > MaxTid ? S.Tid : MaxTid;
  appendf(Out,
          ",{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":0,"
          "\"args\":{\"name\":\"request\"}}",
          Pid);
  for (int W = 1; W <= MaxTid; ++W)
    appendf(Out,
            ",{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,"
            "\"args\":{\"name\":\"run worker %d\"}}",
            Pid, W, W - 1);
}

/// Emit one "X" complete event per span of \p T under pid \p Pid.
void emitTreeSpans(std::string &Out, const tracing::SpanTree &T, int Pid) {
  std::string TraceHex = tracing::hexTraceId(T.Trace);
  for (const tracing::Span &S : T.Spans) {
    double Ts = static_cast<double>(S.BeginNs) / 1e3;
    double Dur =
        static_cast<double>(S.EndNs > S.BeginNs ? S.EndNs - S.BeginNs : 0) /
        1e3;
    appendf(Out,
            ",{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"pid\":%d,"
            "\"tid\":%d,\"ts\":%.3f,\"dur\":%.3f,\"args\":{",
            jsonEscape(S.Name).c_str(), jsonEscape(S.Cat).c_str(), Pid,
            S.Tid, Ts, Dur);
    appendf(Out, "\"trace\":\"%s\",\"span\":\"%s\"", TraceHex.c_str(),
            tracing::hexSpanId(S.Id).c_str());
    if (S.Parent)
      appendf(Out, ",\"parent\":\"%s\"", tracing::hexSpanId(S.Parent).c_str());
    for (const auto &[K, V] : S.Args)
      appendf(Out, ",\"%s\":\"%s\"", jsonEscape(K).c_str(),
              jsonEscape(V).c_str());
    Out += "}}";
  }
}

} // namespace

std::string spanTreeChromeTrace(const tracing::SpanTree &T) {
  std::string Out;
  appendf(Out, "{\"traceId\":\"%s\",\"sampled\":%s,",
          tracing::hexTraceId(T.Trace).c_str(), T.Sampled ? "true" : "false");
  if (!T.Job.empty())
    appendf(Out, "\"job\":\"%s\",", jsonEscape(T.Job).c_str());
  Out += "\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool First = true;
  emitTreeMeta(Out, T, 1, First);
  emitTreeSpans(Out, T, 1);
  Out += "]}";
  return Out;
}

std::string mergedChromeTrace(const std::vector<tracing::SpanTree> &Trees) {
  std::string Out;
  appendf(Out, "{\"displayTimeUnit\":\"ms\",\"jobs\":%zu,\"traceEvents\":[",
          Trees.size());
  bool First = true;
  for (size_t I = 0; I < Trees.size(); ++I)
    emitTreeMeta(Out, Trees[I], static_cast<int>(I) + 1, First);
  for (size_t I = 0; I < Trees.size(); ++I)
    emitTreeSpans(Out, Trees[I], static_cast<int>(I) + 1);
  Out += "]}";
  return Out;
}

void appendRunSpans(tracing::SpanTree &T, uint64_t RunSpanId,
                    uint64_t RunBeginNs, const RunStats &R,
                    tracing::IdSource &Ids) {
  // One span per (worker, superstep), on the worker's own tid row so the
  // timeline reads like the standalone chromeTrace() export — but each
  // span carries the job's trace id and parents to the run span, which is
  // the whole point: worker imbalance inside a slow request is now
  // attributable to that request.
  for (size_t W = 0; W < R.Workers.size(); ++W) {
    for (const WorkerSpan &Sp : R.Workers[W]) {
      tracing::Span S;
      S.Id = Ids.nextId();
      S.Parent = RunSpanId;
      S.Name = strf("superstep ", Sp.Step);
      S.Cat = "superstep";
      S.BeginNs = RunBeginNs + Sp.BeginNs;
      S.EndNs = RunBeginNs + Sp.EndNs;
      S.Tid = static_cast<int>(W) + 1;
      S.Args.emplace_back("updated", strf(Sp.Updated));
      S.Args.emplace_back("stabilized", strf(Sp.Stabilized));
      S.Args.emplace_back("died", strf(Sp.Died));
      S.Args.emplace_back("blocks", strf(Sp.BlocksClaimed));
      T.add(std::move(S));
    }
  }
  // Trapped faults as zero-length children on the faulting worker's row.
  for (const StrandFault &F : R.Faults) {
    tracing::Span S;
    S.Id = Ids.nextId();
    S.Parent = RunSpanId;
    S.Name = strf("fault strand ", F.Strand, " (", faultKindName(F.Kind),
                  ")");
    S.Cat = "fault";
    S.BeginNs = RunBeginNs + F.Ns;
    S.EndNs = S.BeginNs;
    S.Tid = F.Worker + 1;
    S.Args.emplace_back("step", strf(F.Step));
    S.Args.emplace_back("message", F.Message);
    T.add(std::move(S));
  }
}

void appendPoolSpan(tracing::SpanTree &T, uint64_t RunSpanId,
                    uint64_t RunBeginNs, uint64_t RunEndNs,
                    const RunStats &R, tracing::IdSource &Ids) {
  tracing::Span S;
  S.Id = Ids.nextId();
  S.Parent = RunSpanId;
  S.Name = "pool";
  S.Cat = "pool";
  S.BeginNs = RunBeginNs;
  S.EndNs = RunEndNs;
  S.Args.emplace_back("workers", strf(R.NumWorkers));
  if (R.Metrics.Enabled) {
    S.Args.emplace_back("steals", strf(R.Metrics.Counters[McBlocksStolen]));
    S.Args.emplace_back("parks", strf(R.Metrics.Counters[McPoolParks]));
    S.Args.emplace_back("poolThreads",
                        strf(R.Metrics.Gauges[MgPoolThreads]));
  }
  T.add(std::move(S));
}

} // namespace diderot::observe

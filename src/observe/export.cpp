//===--- observe/export.cpp - telemetry exporters ----------------------------===//
//
// Part of the Diderot-C++ reproduction (PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "observe/observe.h"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <vector>

#include "support/strings.h"

namespace diderot::observe {

namespace {

void appendf(std::string &Out, const char *Fmt, ...) {
  char Buf[256];
  va_list Ap;
  va_start(Ap, Fmt);
  int N = std::vsnprintf(Buf, sizeof(Buf), Fmt, Ap);
  va_end(Ap);
  if (N > 0)
    Out.append(Buf, static_cast<size_t>(N) < sizeof(Buf)
                        ? static_cast<size_t>(N)
                        : sizeof(Buf) - 1);
}

double toMs(uint64_t Ns) { return static_cast<double>(Ns) / 1e6; }

/// Split source text into 1-indexed lines (index 0 unused).
std::vector<std::string> splitLines(const std::string &Source) {
  std::vector<std::string> Lines;
  Lines.emplace_back(); // line numbers are 1-based
  std::string Cur;
  for (char C : Source) {
    if (C == '\n') {
      Lines.push_back(Cur);
      Cur.clear();
    } else {
      Cur += C;
    }
  }
  if (!Cur.empty())
    Lines.push_back(Cur);
  return Lines;
}

void appendStepFields(std::string &Out, const StepStats &S) {
  appendf(Out,
          "\"updated\":%" PRIu64 ",\"stabilized\":%" PRIu64
          ",\"died\":%" PRIu64 ",\"blocksClaimed\":%" PRIu64
          ",\"lockAcquires\":%" PRIu64 ",\"barrierWaits\":%" PRIu64,
          S.Updated, S.Stabilized, S.Died, S.BlocksClaimed, S.LockAcquires,
          S.BarrierWaits);
}

} // namespace

std::string jsonEscape(const std::string &S) {
  // One escaping routine for the whole tree; the implementation moved to
  // support/strings.cpp so the structured logger and daemon (which must not
  // depend on observe) share it. This forward keeps every existing
  // observe::jsonEscape caller working.
  return diderot::jsonEscape(S);
}

std::string formatSummary(const RunStats &R) {
  std::string Out;
  appendf(Out, "run: %d superstep(s), %d worker(s), %.3f ms wall\n", R.Steps,
          R.NumWorkers, toMs(R.WallNs));
  if (R.Outcome != RunOutcome::Converged || !R.Faults.empty())
    appendf(Out, "outcome: %s, %zu fault(s)\n", runOutcomeName(R.Outcome),
            R.Faults.size());
  if (!R.Enabled) {
    Out += "(telemetry not collected; re-run with stats enabled)\n";
    return Out;
  }
  Out += "  step     updated  stabilized        died      blocks     time(ms)\n";
  for (const StepStats &S : R.Supersteps)
    appendf(Out, "  %4d  %10" PRIu64 "  %10" PRIu64 "  %10" PRIu64
                 "  %10" PRIu64 "  %11.3f\n",
            S.Step, S.Updated, S.Stabilized, S.Died, S.BlocksClaimed,
            toMs(S.EndNs - S.BeginNs));
  appendf(Out, " total  %10" PRIu64 "  %10" PRIu64 "  %10" PRIu64
               "  %10" PRIu64 "  %11.3f\n",
          R.Totals.Updated, R.Totals.Stabilized, R.Totals.Died,
          R.Totals.BlocksClaimed, toMs(R.WallNs));
  appendf(Out, " locks %" PRIu64 "  barriers %" PRIu64 "\n",
          R.Totals.LockAcquires, R.Totals.BarrierWaits);
  // Distribution summary from the metrics registry (present when the run
  // collected metrics): the per-step table above only shows means.
  if (R.Metrics.Enabled) {
    appendf(Out, " %-17s%11s%11s%11s%11s%11s\n", "histogram", "min", "p50",
            "p90", "p99", "max");
    auto Row = [&](const char *Name, const HistData &H, double Div,
                   const char *Unit) {
      if (!H.Count)
        return;
      appendf(Out, " %-17s%11.3f%11.3f%11.3f%11.3f%11.3f  %s\n", Name,
              static_cast<double>(H.Min) / Div, H.quantile(0.5) / Div,
              H.quantile(0.9) / Div, H.quantile(0.99) / Div,
              static_cast<double>(H.Max) / Div, Unit);
    };
    Row("step wall", R.Metrics.Hists[MhStepWallNs], 1e6, "ms");
    Row("worker imbalance", R.Metrics.Hists[MhImbalanceNs], 1e6, "ms");
    Row("block claim", R.Metrics.Hists[MhClaimNs], 1e3, "us");
    Row("updates/step", R.Metrics.Hists[MhUpdatesPerStep], 1.0, "");
  }
  return Out;
}

std::string statsJson(const RunStats &R) {
  std::string Out;
  Out += "{";
  appendf(Out, "\"steps\":%d,\"numWorkers\":%d,\"enabled\":%s,\"wallNs\":%" PRIu64
               ",",
          R.Steps, R.NumWorkers, R.Enabled ? "true" : "false", R.WallNs);
  appendf(Out, "\"outcome\":\"%s\",",
          jsonEscape(runOutcomeName(R.Outcome)).c_str());
  Out += "\"faults\":[";
  for (size_t I = 0; I < R.Faults.size(); ++I) {
    const StrandFault &F = R.Faults[I];
    if (I)
      Out += ",";
    appendf(Out,
            "{\"strand\":%" PRIu64 ",\"step\":%d,\"worker\":%d,"
            "\"kind\":\"%s\",\"ns\":%" PRIu64 ",\"message\":\"%s\"}",
            F.Strand, F.Step, F.Worker,
            jsonEscape(faultKindName(F.Kind)).c_str(), F.Ns,
            jsonEscape(F.Message).c_str());
  }
  Out += "],";
  Out += "\"totals\":{";
  appendStepFields(Out, R.Totals);
  Out += "},\"supersteps\":[";
  for (size_t I = 0; I < R.Supersteps.size(); ++I) {
    const StepStats &S = R.Supersteps[I];
    if (I)
      Out += ",";
    appendf(Out, "{\"step\":%d,", S.Step);
    appendStepFields(Out, S);
    appendf(Out, ",\"beginNs\":%" PRIu64 ",\"endNs\":%" PRIu64 "}", S.BeginNs,
            S.EndNs);
  }
  Out += "],\"workers\":[";
  for (size_t W = 0; W < R.Workers.size(); ++W) {
    if (W)
      Out += ",";
    appendf(Out, "{\"worker\":%zu,\"spans\":[", W);
    for (size_t S = 0; S < R.Workers[W].size(); ++S) {
      const WorkerSpan &Sp = R.Workers[W][S];
      if (S)
        Out += ",";
      appendf(Out,
              "{\"step\":%d,\"updated\":%" PRIu64 ",\"stabilized\":%" PRIu64
              ",\"died\":%" PRIu64 ",\"blocksClaimed\":%" PRIu64
              ",\"lockAcquires\":%" PRIu64 ",\"barrierWaits\":%" PRIu64
              ",\"beginNs\":%" PRIu64 ",\"endNs\":%" PRIu64 "}",
              Sp.Step, Sp.Updated, Sp.Stabilized, Sp.Died, Sp.BlocksClaimed,
              Sp.LockAcquires, Sp.BarrierWaits, Sp.BeginNs, Sp.EndNs);
    }
    Out += "]}";
  }
  Out += "]";
  if (R.Metrics.Enabled) {
    Out += ",\"metrics\":";
    Out += metricsJson(R.Metrics);
  }
  Out += "}";
  return Out;
}

std::string chromeTrace(const RunStats &R) {
  std::string Out;
  Out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  // All name strings pass through jsonEscape even when they look inert, so
  // the exporter stays safe if the formats ever pick up user text.
  std::string PName;
  appendf(PName, "diderot run (%d workers)", R.NumWorkers);
  appendf(Out, "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
               "\"args\":{\"name\":\"%s\"}}",
          jsonEscape(PName).c_str());
  for (size_t W = 0; W < R.Workers.size(); ++W) {
    std::string TName;
    appendf(TName, "worker %zu", W);
    appendf(Out, ",{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
                 "\"tid\":%zu,\"args\":{\"name\":\"%s\"}}",
            W, jsonEscape(TName).c_str());
  }
  for (size_t W = 0; W < R.Workers.size(); ++W)
    for (const WorkerSpan &Sp : R.Workers[W]) {
      double Ts = static_cast<double>(Sp.BeginNs) / 1e3;
      double Dur = static_cast<double>(Sp.EndNs - Sp.BeginNs) / 1e3;
      std::string SName;
      appendf(SName, "superstep %d", Sp.Step);
      appendf(Out,
              ",{\"name\":\"%s\",\"cat\":\"superstep\","
              "\"ph\":\"X\",\"pid\":1,\"tid\":%zu,\"ts\":%.3f,\"dur\":%.3f,"
              "\"args\":{\"updated\":%" PRIu64 ",\"stabilized\":%" PRIu64
              ",\"died\":%" PRIu64 ",\"blocks\":%" PRIu64 "}}",
              jsonEscape(SName).c_str(), W, Ts, Dur, Sp.Updated, Sp.Stabilized,
              Sp.Died, Sp.BlocksClaimed);
    }
  // Strand lifecycle markers ride along as instant events on the worker
  // row that retired (or started) the strand.
  for (const StrandEvent &E : R.Events) {
    std::string EName;
    appendf(EName, "strand %" PRIu64 " %s", E.Strand,
            strandEventName(E.Kind));
    appendf(Out,
            ",{\"name\":\"%s\",\"cat\":\"strand\",\"ph\":\"i\",\"s\":\"t\","
            "\"pid\":1,\"tid\":%d,\"ts\":%.3f,\"args\":{\"strand\":%" PRIu64
            ",\"step\":%d}}",
            jsonEscape(EName).c_str(), E.Worker,
            static_cast<double>(E.Ns) / 1e3, E.Strand, E.Step);
  }
  // Trapped faults appear as their own instant events (cat "fault") so a
  // trace of a policied run shows exactly where containment fired.
  for (const StrandFault &F : R.Faults) {
    std::string FName;
    appendf(FName, "fault strand %" PRIu64 " (%s)", F.Strand,
            faultKindName(F.Kind));
    appendf(Out,
            ",{\"name\":\"%s\",\"cat\":\"fault\",\"ph\":\"i\",\"s\":\"t\","
            "\"pid\":1,\"tid\":%d,\"ts\":%.3f,\"args\":{\"strand\":%" PRIu64
            ",\"step\":%d,\"message\":\"%s\"}}",
            jsonEscape(FName).c_str(), F.Worker,
            static_cast<double>(F.Ns) / 1e3, F.Strand, F.Step,
            jsonEscape(F.Message).c_str());
  }
  Out += "]}";
  return Out;
}

std::string profileListing(const ProfileData &P, const std::string &Source) {
  std::string Out;
  if (!P.Enabled) {
    Out += "(profile not collected; re-run with --profile)\n";
    return Out;
  }
  uint64_t Totals[NumProfClasses] = {};
  uint64_t MaxTotal = 0;
  for (const ProfileLine &L : P.Lines) {
    for (int C = 0; C < NumProfClasses; ++C)
      Totals[C] += L.Counts[C];
    MaxTotal = std::max(MaxTotal, L.total());
  }
  Out += "      probes  kern-evals      inside  tensor-ops  line  source\n";
  auto emitLine = [&](const ProfileLine *L, int Line, const char *Text) {
    if (L && L->total() > 0) {
      appendf(Out, "%12" PRIu64 "%12" PRIu64 "%12" PRIu64 "%12" PRIu64,
              L->Counts[0], L->Counts[1], L->Counts[2], L->Counts[3]);
      // Flag the hottest lines (within 10% of the peak) for fast scanning.
      Out += (MaxTotal > 0 && L->total() * 10 >= MaxTotal * 9) ? " *" : "  ";
    } else {
      appendf(Out, "%12s%12s%12s%12s  ", "", "", "", "");
    }
    appendf(Out, "%4d  ", Line);
    Out += Text; // appended directly: source lines can exceed appendf's buffer
    Out += "\n";
  };
  if (!Source.empty()) {
    std::vector<std::string> Lines = splitLines(Source);
    for (size_t N = 1; N < Lines.size(); ++N)
      emitLine(P.find(static_cast<int>(N)), static_cast<int>(N),
               Lines[N].c_str());
    // Profiled lines past the end of the text (shouldn't happen, but never
    // drop counts silently).
    for (const ProfileLine &L : P.Lines)
      if (L.Line >= static_cast<int>(Lines.size()) && L.total() > 0)
        emitLine(&L, L.Line, "<line not in source>");
  } else {
    for (const ProfileLine &L : P.Lines)
      if (L.total() > 0)
        emitLine(&L, L.Line, "");
  }
  appendf(Out, "total %6" PRIu64 "%12" PRIu64 "%12" PRIu64 "%12" PRIu64 "\n",
          Totals[0], Totals[1], Totals[2], Totals[3]);
  return Out;
}

std::string profileJson(const ProfileData &P, const std::string &Source) {
  std::string Out;
  std::vector<std::string> Lines = splitLines(Source);
  uint64_t Totals[NumProfClasses] = {};
  Out += "{";
  appendf(Out, "\"enabled\":%s,\"lines\":[", P.Enabled ? "true" : "false");
  bool First = true;
  for (const ProfileLine &L : P.Lines) {
    if (L.total() == 0) {
      bool AnySites = false;
      for (int C = 0; C < NumProfClasses; ++C)
        AnySites = AnySites || L.Sites[C] > 0;
      if (!AnySites)
        continue;
    }
    for (int C = 0; C < NumProfClasses; ++C)
      Totals[C] += L.Counts[C];
    if (!First)
      Out += ",";
    First = false;
    appendf(Out, "{\"line\":%d,", L.Line);
    const char *Text =
        L.Line > 0 && L.Line < static_cast<int>(Lines.size())
            ? Lines[static_cast<size_t>(L.Line)].c_str()
            : "";
    Out += "\"text\":\"";
    Out += jsonEscape(Text); // direct append: lines can exceed appendf's buffer
    Out += "\",";
    Out += "\"counts\":{";
    for (int C = 0; C < NumProfClasses; ++C)
      appendf(Out, "%s\"%s\":%" PRIu64, C ? "," : "",
              jsonEscape(profClassName(static_cast<ProfClass>(C))).c_str(),
              L.Counts[C]);
    Out += "},\"sites\":{";
    for (int C = 0; C < NumProfClasses; ++C)
      appendf(Out, "%s\"%s\":%" PRIu64, C ? "," : "",
              jsonEscape(profClassName(static_cast<ProfClass>(C))).c_str(),
              L.Sites[C]);
    Out += "}}";
  }
  Out += "],\"totals\":{";
  for (int C = 0; C < NumProfClasses; ++C)
    appendf(Out, "%s\"%s\":%" PRIu64, C ? "," : "",
            jsonEscape(profClassName(static_cast<ProfClass>(C))).c_str(),
            Totals[C]);
  Out += "}}";
  return Out;
}

std::string lifecycleJson(const RunStats &R) {
  std::string Out;
  Out += "{\"events\":[";
  for (size_t I = 0; I < R.Events.size(); ++I) {
    const StrandEvent &E = R.Events[I];
    if (I)
      Out += ",";
    appendf(Out,
            "{\"strand\":%" PRIu64 ",\"step\":%d,\"kind\":\"%s\","
            "\"worker\":%d,\"ns\":%" PRIu64 "}",
            E.Strand, E.Step, jsonEscape(strandEventName(E.Kind)).c_str(),
            E.Worker, E.Ns);
  }
  Out += "]}";
  return Out;
}

} // namespace diderot::observe

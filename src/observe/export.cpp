//===--- observe/export.cpp - telemetry exporters ----------------------------===//
//
// Part of the Diderot-C++ reproduction (PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "observe/observe.h"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>

namespace diderot::observe {

namespace {

void appendf(std::string &Out, const char *Fmt, ...) {
  char Buf[256];
  va_list Ap;
  va_start(Ap, Fmt);
  int N = std::vsnprintf(Buf, sizeof(Buf), Fmt, Ap);
  va_end(Ap);
  if (N > 0)
    Out.append(Buf, static_cast<size_t>(N) < sizeof(Buf)
                        ? static_cast<size_t>(N)
                        : sizeof(Buf) - 1);
}

double toMs(uint64_t Ns) { return static_cast<double>(Ns) / 1e6; }

void appendStepFields(std::string &Out, const StepStats &S) {
  appendf(Out,
          "\"updated\":%" PRIu64 ",\"stabilized\":%" PRIu64
          ",\"died\":%" PRIu64 ",\"blocksClaimed\":%" PRIu64
          ",\"lockAcquires\":%" PRIu64 ",\"barrierWaits\":%" PRIu64,
          S.Updated, S.Stabilized, S.Died, S.BlocksClaimed, S.LockAcquires,
          S.BarrierWaits);
}

} // namespace

std::string formatSummary(const RunStats &R) {
  std::string Out;
  appendf(Out, "run: %d superstep(s), %d worker(s), %.3f ms wall\n", R.Steps,
          R.NumWorkers, toMs(R.WallNs));
  if (!R.Enabled) {
    Out += "(telemetry not collected; re-run with stats enabled)\n";
    return Out;
  }
  Out += "  step     updated  stabilized        died      blocks     time(ms)\n";
  for (const StepStats &S : R.Supersteps)
    appendf(Out, "  %4d  %10" PRIu64 "  %10" PRIu64 "  %10" PRIu64
                 "  %10" PRIu64 "  %11.3f\n",
            S.Step, S.Updated, S.Stabilized, S.Died, S.BlocksClaimed,
            toMs(S.EndNs - S.BeginNs));
  appendf(Out, " total  %10" PRIu64 "  %10" PRIu64 "  %10" PRIu64
               "  %10" PRIu64 "  %11.3f\n",
          R.Totals.Updated, R.Totals.Stabilized, R.Totals.Died,
          R.Totals.BlocksClaimed, toMs(R.WallNs));
  appendf(Out, " locks %" PRIu64 "  barriers %" PRIu64 "\n",
          R.Totals.LockAcquires, R.Totals.BarrierWaits);
  return Out;
}

std::string statsJson(const RunStats &R) {
  std::string Out;
  Out += "{";
  appendf(Out, "\"steps\":%d,\"numWorkers\":%d,\"enabled\":%s,\"wallNs\":%" PRIu64
               ",",
          R.Steps, R.NumWorkers, R.Enabled ? "true" : "false", R.WallNs);
  Out += "\"totals\":{";
  appendStepFields(Out, R.Totals);
  Out += "},\"supersteps\":[";
  for (size_t I = 0; I < R.Supersteps.size(); ++I) {
    const StepStats &S = R.Supersteps[I];
    if (I)
      Out += ",";
    appendf(Out, "{\"step\":%d,", S.Step);
    appendStepFields(Out, S);
    appendf(Out, ",\"beginNs\":%" PRIu64 ",\"endNs\":%" PRIu64 "}", S.BeginNs,
            S.EndNs);
  }
  Out += "],\"workers\":[";
  for (size_t W = 0; W < R.Workers.size(); ++W) {
    if (W)
      Out += ",";
    appendf(Out, "{\"worker\":%zu,\"spans\":[", W);
    for (size_t S = 0; S < R.Workers[W].size(); ++S) {
      const WorkerSpan &Sp = R.Workers[W][S];
      if (S)
        Out += ",";
      appendf(Out,
              "{\"step\":%d,\"updated\":%" PRIu64 ",\"stabilized\":%" PRIu64
              ",\"died\":%" PRIu64 ",\"blocksClaimed\":%" PRIu64
              ",\"lockAcquires\":%" PRIu64 ",\"barrierWaits\":%" PRIu64
              ",\"beginNs\":%" PRIu64 ",\"endNs\":%" PRIu64 "}",
              Sp.Step, Sp.Updated, Sp.Stabilized, Sp.Died, Sp.BlocksClaimed,
              Sp.LockAcquires, Sp.BarrierWaits, Sp.BeginNs, Sp.EndNs);
    }
    Out += "]}";
  }
  Out += "]}";
  return Out;
}

std::string chromeTrace(const RunStats &R) {
  std::string Out;
  Out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  appendf(Out, "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
               "\"args\":{\"name\":\"diderot run (%d workers)\"}}",
          R.NumWorkers);
  for (size_t W = 0; W < R.Workers.size(); ++W)
    appendf(Out, ",{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
                 "\"tid\":%zu,\"args\":{\"name\":\"worker %zu\"}}",
            W, W);
  for (size_t W = 0; W < R.Workers.size(); ++W)
    for (const WorkerSpan &Sp : R.Workers[W]) {
      double Ts = static_cast<double>(Sp.BeginNs) / 1e3;
      double Dur = static_cast<double>(Sp.EndNs - Sp.BeginNs) / 1e3;
      appendf(Out,
              ",{\"name\":\"superstep %d\",\"cat\":\"superstep\","
              "\"ph\":\"X\",\"pid\":1,\"tid\":%zu,\"ts\":%.3f,\"dur\":%.3f,"
              "\"args\":{\"updated\":%" PRIu64 ",\"stabilized\":%" PRIu64
              ",\"died\":%" PRIu64 ",\"blocks\":%" PRIu64 "}}",
              Sp.Step, W, Ts, Dur, Sp.Updated, Sp.Stabilized, Sp.Died,
              Sp.BlocksClaimed);
    }
  Out += "]}";
  return Out;
}

} // namespace diderot::observe

//===--- observe/metrics.cpp - metrics exposition + RSS sampling -------------===//
//
// Part of the Diderot-C++ reproduction (PLDI 2012).
//
// Host-side half of the metrics registry: the Prometheus text and JSON
// exposition formats, the v4-ABI fallback that derives step-level
// histograms from Recorder spans, and the background process-RSS sampler.
// The registry itself is header-only (observe/metrics.h) because generated
// native code links it; nothing here crosses the dlopen boundary.
//
//===----------------------------------------------------------------------===//

#include "observe/observe.h"

#include <chrono>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace diderot::observe {

namespace {

void appendf(std::string &Out, const char *Fmt, ...) {
  char Buf[256];
  va_list Ap;
  va_start(Ap, Fmt);
  int N = std::vsnprintf(Buf, sizeof(Buf), Fmt, Ap);
  va_end(Ap);
  if (N > 0)
    Out.append(Buf, static_cast<size_t>(N) < sizeof(Buf)
                        ? static_cast<size_t>(N)
                        : sizeof(Buf) - 1);
}

/// One counter/gauge sample with its HELP/TYPE preamble.
void promScalar(std::string &Out, const MetricDesc &Dc, const char *Type,
                int64_t Signed, uint64_t Unsigned, bool IsSigned) {
  appendf(Out, "# HELP %s %s\n# TYPE %s %s\n", Dc.PromName, Dc.Help,
          Dc.PromName, Type);
  if (IsSigned)
    appendf(Out, "%s %" PRId64 "\n", Dc.PromName, Signed);
  else
    appendf(Out, "%s %" PRIu64 "\n", Dc.PromName, Unsigned);
}

/// Append one histogram in Prometheus exposition: cumulative `le` buckets
/// at power-of-two boundaries spanning the observed [Min, Max], then +Inf,
/// _sum, and _count. The registry's log-linear buckets are finer (8 per
/// octave); octave boundaries keep the scrape small while staying exact at
/// each emitted `le` (every registry bucket lies entirely inside one octave).
void promHist(std::string &Out, const MetricDesc &Dc, const HistData &H) {
  appendf(Out, "# HELP %s %s\n# TYPE %s histogram\n", Dc.PromName, Dc.Help,
          Dc.PromName);
  auto leLabel = [&](uint64_t B) {
    std::string L;
    if (Dc.Seconds)
      appendf(L, "%.10g", static_cast<double>(B) / 1e9);
    else
      appendf(L, "%" PRIu64, B);
    return L;
  };
  if (H.Count) {
    int K0 = 0;
    while (K0 < 63 && (uint64_t(1) << K0) <= H.Min)
      ++K0; // first boundary above Min
    int K1 = K0;
    while (K1 < 63 && (uint64_t(1) << K1) <= H.Max)
      ++K1; // first boundary >= every sample (when Max < 2^63)
    for (int K = K0; K <= K1; ++K) {
      uint64_t B = uint64_t(1) << K;
      uint64_t Cum = 0;
      for (const auto &[Idx, C] : H.Buckets) {
        if (histBucketHi(static_cast<int>(Idx)) > B)
          break; // buckets sorted; upper bounds monotone
        Cum += C;
      }
      appendf(Out, "%s_bucket{le=\"%s\"} %" PRIu64 "\n", Dc.PromName,
              leLabel(B).c_str(), Cum);
    }
  }
  appendf(Out, "%s_bucket{le=\"+Inf\"} %" PRIu64 "\n", Dc.PromName, H.Count);
  if (Dc.Seconds)
    appendf(Out, "%s_sum %.9g\n", Dc.PromName,
            static_cast<double>(H.Sum) / 1e9);
  else
    appendf(Out, "%s_sum %" PRIu64 "\n", Dc.PromName, H.Sum);
  appendf(Out, "%s_count %" PRIu64 "\n", Dc.PromName, H.Count);
}

} // namespace

std::string prometheusText(const MetricsData &D) {
  std::string Out;
  for (int I = 0; I < NumMetricCounters; ++I)
    promScalar(Out, counterDesc(I), "counter", 0, D.Counters[I], false);
  for (int I = 0; I < NumMetricGauges; ++I)
    promScalar(Out, gaugeDesc(I), "gauge", D.Gauges[I], 0, true);
  for (int I = 0; I < NumMetricHists; ++I)
    promHist(Out, histDesc(I), D.Hists[I]);
  return Out;
}

std::string metricsJson(const MetricsData &D) {
  std::string Out;
  appendf(Out, "{\"enabled\":%s,\"counters\":{", D.Enabled ? "true" : "false");
  for (int I = 0; I < NumMetricCounters; ++I)
    appendf(Out, "%s\"%s\":%" PRIu64, I ? "," : "", counterDesc(I).JsonName,
            D.Counters[I]);
  Out += "},\"gauges\":{";
  for (int I = 0; I < NumMetricGauges; ++I)
    appendf(Out, "%s\"%s\":%" PRId64, I ? "," : "", gaugeDesc(I).JsonName,
            D.Gauges[I]);
  Out += "},\"histograms\":{";
  for (int I = 0; I < NumMetricHists; ++I) {
    const HistData &H = D.Hists[I];
    appendf(Out,
            "%s\"%s\":{\"count\":%" PRIu64 ",\"sum\":%" PRIu64
            ",\"min\":%" PRIu64 ",\"max\":%" PRIu64,
            I ? "," : "", histDesc(I).JsonName, H.Count, H.Sum, H.Min, H.Max);
    appendf(Out, ",\"mean\":%.9g,\"p50\":%.9g,\"p90\":%.9g,\"p99\":%.9g",
            H.mean(), H.quantile(0.5), H.quantile(0.9), H.quantile(0.99));
    Out += ",\"buckets\":[";
    for (size_t B = 0; B < H.Buckets.size(); ++B)
      appendf(Out, "%s[%u,%" PRIu64 "]", B ? "," : "", H.Buckets[B].first,
              H.Buckets[B].second);
    Out += "]}";
  }
  Out += "}}";
  return Out;
}

MetricsData deriveMetrics(const RunStats &R) {
  Metrics M;
  M.start(R.NumWorkers, true);
  M.counter(McUpdated).add(R.Totals.Updated);
  M.counter(McStabilized).add(R.Totals.Stabilized);
  M.counter(McDied).add(R.Totals.Died);
  M.counter(McBlocksClaimed).add(R.Totals.BlocksClaimed);
  M.counter(McLockAcquires).add(R.Totals.LockAcquires);
  M.counter(McBarrierWaits).add(R.Totals.BarrierWaits);
  M.counter(McSupersteps).add(R.Supersteps.size());
  M.counter(McFaults).add(R.Faults.size());
  for (size_t S = 0; S < R.Supersteps.size(); ++S) {
    const StepStats &St = R.Supersteps[S];
    M.hist(MhStepWallNs)
        .record(St.EndNs > St.BeginNs ? St.EndNs - St.BeginNs : 0);
    M.hist(MhUpdatesPerStep).record(St.Updated);
    uint64_t MinDur = ~uint64_t(0), MaxDur = 0;
    bool Any = false;
    for (const std::vector<WorkerSpan> &Row : R.Workers) {
      if (S >= Row.size())
        continue;
      uint64_t Dur = Row[S].EndNs - Row[S].BeginNs;
      MinDur = Dur < MinDur ? Dur : MinDur;
      MaxDur = Dur > MaxDur ? Dur : MaxDur;
      Any = true;
    }
    if (Any)
      M.hist(MhImbalanceNs).record(MaxDur - MinDur);
  }
  // Block-claim latency needs per-claim timing, which spans do not carry:
  // that histogram stays empty on the fallback path.
  return M.snapshot();
}

int64_t readProcessRssBytes() {
  std::FILE *F = std::fopen("/proc/self/statm", "r");
  if (!F)
    return 0;
  long long Total = 0, Resident = 0;
  int Got = std::fscanf(F, "%lld %lld", &Total, &Resident);
  std::fclose(F);
  if (Got != 2)
    return 0;
  long Page = 4096;
#if defined(_SC_PAGESIZE)
  long P = ::sysconf(_SC_PAGESIZE);
  if (P > 0)
    Page = P;
#endif
  return static_cast<int64_t>(Resident) * Page;
}

RssSampler::~RssSampler() { stop(); }

void RssSampler::start(int PeriodMs) {
  std::lock_guard<std::mutex> G(Mu);
  if (T.joinable())
    return;
  Quit = false;
  Rss.store(readProcessRssBytes(), std::memory_order_relaxed);
  int Period = PeriodMs < 1 ? 1 : PeriodMs;
  T = std::thread([this, Period] {
    std::unique_lock<std::mutex> L(Mu);
    while (!Quit) {
      Cv.wait_for(L, std::chrono::milliseconds(Period));
      if (Quit)
        break;
      L.unlock();
      Rss.store(readProcessRssBytes(), std::memory_order_relaxed);
      L.lock();
    }
  });
}

void RssSampler::stop() {
  {
    std::lock_guard<std::mutex> G(Mu);
    if (!T.joinable())
      return;
    Quit = true;
  }
  Cv.notify_all();
  T.join();
  T = std::thread();
}

} // namespace diderot::observe

//===--- observe/replay.h - replay bundle format and divergence diagnosis ----===//
//
// Part of the Diderot-C++ reproduction (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The flight-recorder bundle (docs/REPLAY.md): a self-contained directory
/// (or ustar archive of one) capturing everything needed to deterministically
/// re-execute a run and compare it superstep-by-superstep against what was
/// recorded:
///
///   manifest.json         schema version, program identity, CompileOptions,
///                         run configuration, policy, ABI/compiler/git
///                         identity, input bindings, recorded outcome,
///                         per-slot source-map names
///   program.diderot       the DSL source, verbatim
///   digests.tsv           one 128-bit canonical state digest per superstep
///                         (entry 0 = post-initialize; observe/digest.h)
///   states.tsv            optional per-strand canonical state behind every
///                         digest entry (status byte + slot bit patterns)
///   input-<hash128>.nrrd  content-addressed copies of file-based inputs
///
/// This layer owns the FORMAT and the DIAGNOSIS (first divergent superstep,
/// first divergent strand/slot with source-map names, strand pretty-
/// printing). It deliberately depends only on diderot_support: the
/// orchestration that recompiles and re-runs a bundle lives up the stack in
/// driver/record.h, and the daemon's failure capture in serve/daemon.cpp.
///
//===----------------------------------------------------------------------===//

#ifndef DIDEROT_OBSERVE_REPLAY_H
#define DIDEROT_OBSERVE_REPLAY_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "observe/digest.h"
#include "support/result.h"

namespace diderot::observe {

/// Bundle schema version; bump on any manifest or file-layout change.
constexpr int ReplaySchemaVersion = 1;

/// One recorded input binding. File-based NRRD inputs are copied into the
/// bundle content-addressed and Text rewritten to the bundle-relative name;
/// everything else (scalars, tensors, synth: specs) replays from Text
/// verbatim.
struct RecordedInput {
  std::string Name;
  std::string Text;
  bool IsFile = false; ///< Text names a file inside the bundle
};

/// Everything a bundle captures, in memory. Field groups mirror the layers
/// they came from: compile options, run configuration, run policy, recorded
/// results.
struct ReplayBundle {
  int Schema = ReplaySchemaVersion;
  std::string Program; ///< program name (diagnostics, artifact naming)
  std::string Source;  ///< DSL source text (program.diderot)

  // Identity of the recording toolchain (informational: replays under a
  // different compiler may legitimately diverge, and the report says so).
  int AbiVersion = 0;
  std::string CompilerId;
  std::string GitSha;

  // CompileOptions subset that changes generated code.
  bool EngineNative = true;
  bool DoublePrecision = false;
  bool EnableContract = true;
  bool EnableValueNumbering = true;
  std::string ExtraCxxFlags;

  // RunConfig.
  int MaxSupersteps = 1;
  int NumWorkers = 0;
  int BlockSize = 0;
  std::string SchedulerName = "bsp";

  // RunPolicy. The fault-injection plan is part of the recording: an
  // injected fault is input, not noise — replaying a chaos-test job must
  // re-inject the same faults to reproduce the same outcome.
  int64_t DeadlineNs = 0;
  int64_t MaxFaults = -1;
  int WatchdogSteps = 0;
  bool StrictFp = false;
  struct PlannedFaultRec {
    uint64_t Strand = 0;
    int Step = 0;
    int Kind = 0; ///< observe::FaultKind as int
  };
  std::vector<PlannedFaultRec> Plan;

  // Inputs, in binding order.
  std::vector<RecordedInput> Inputs;

  // Source-map names, one per canonical state slot (params first, then
  // state variables, tensor components suffixed "[k]").
  std::vector<std::string> SlotNames;

  // Recorded results.
  std::string Outcome; ///< runOutcomeName of the recorded run
  int Steps = 0;
  int64_t NumStrands = 0;
  std::string OutputDigest; ///< hex hash over every output's values
  DigestLog Digests;        ///< per-superstep digests (+states when logged)
};

/// File names inside a bundle.
inline const char *bundleManifestFile() { return "manifest.json"; }
inline const char *bundleSourceFile() { return "program.diderot"; }
inline const char *bundleDigestsFile() { return "digests.tsv"; }
inline const char *bundleStatesFile() { return "states.tsv"; }

/// Content-addressed name for an input file with FNV-128 hex \p Hash.
inline std::string bundleInputFile(const std::string &Hash) {
  return "input-" + Hash + ".nrrd";
}

/// Serialize the manifest (everything except Source and Digests, which have
/// their own files) as JSON.
std::string manifestToJson(const ReplayBundle &B);

/// Parse a manifest produced by manifestToJson. Unknown keys are ignored
/// (forward compatibility); missing keys keep their defaults.
Status manifestFromJson(const std::string &Json, ReplayBundle &B);

/// Serialize / parse the digest stream: one "<index>\t<32-hex>" line per
/// entry.
std::string digestsToTsv(const DigestLog &L);
Status digestsFromTsv(const std::string &Text, DigestLog &L);

/// Serialize / parse the state log: a "# entries strands slots" header then
/// one "<entry>\t<strand>\t<status>\t<slot-bits-hex>..." line per strand
/// per entry.
std::string statesToTsv(const DigestLog &L);
Status statesFromTsv(const std::string &Text, DigestLog &L);

/// Write \p B into directory \p Dir (created if needed). \p InputFiles maps
/// bundle-relative names (bundleInputFile form) to raw NRRD bytes. Every
/// file is published atomically (support/atomic_file.h) so a crashed writer
/// never leaves a torn bundle.
Status writeBundle(const std::string &Dir, const ReplayBundle &B,
                   const std::map<std::string, std::string> &InputFiles = {});

/// Read a bundle from directory \p Dir.
Result<ReplayBundle> readBundle(const std::string &Dir);

/// Where replayed execution first differs from the recording.
struct Divergence {
  bool Diverged = false;
  /// First divergent digest entry: 0 = post-initialize state (inputs or
  /// strand creation differ), k >= 1 = after superstep k. -1 when the
  /// streams match but their lengths differ (reported via Summary).
  int Superstep = -1;
  int64_t Strand = -1;    ///< first divergent strand (state logs only)
  int Slot = -1;          ///< first divergent slot in that strand
  std::string SlotName;   ///< source-map name of that slot
  bool StatusDiffers = false;
  uint8_t WantStatus = 0, GotStatus = 0;
  uint64_t WantBits = 0, GotBits = 0; ///< canonical slot bit patterns
  std::string Summary;    ///< one-paragraph human-readable report
};

/// Compare the recorded stream in \p B against \p Replayed. With state
/// logs on both sides, pinpoints the first divergent strand and slot and
/// names the slot from B.SlotNames; with digests only, reports the first
/// divergent superstep.
Divergence diagnoseDivergence(const ReplayBundle &B, const DigestLog &Replayed);

/// Pretty-print recorded strand \p Strand at digest entry \p Entry using
/// the bundle's source-map slot names — the same rendering `diderotc
/// --dump-strand N --at-superstep K` shows. Errors when the bundle has no
/// state log or the indices are out of range.
Result<std::string> dumpStrand(const ReplayBundle &B, int64_t Strand,
                               int Entry);

} // namespace diderot::observe

#endif // DIDEROT_OBSERVE_REPLAY_H

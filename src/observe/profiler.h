//===--- observe/profiler.h - source-level cost profiling --------------------===//
//
// Part of the Diderot-C++ reproduction (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The collection half of the source-level profiler: a per-worker sharded
/// counter table keyed by (DSL source line, op class). The interpreter
/// increments it while evaluating MidIR (using each instruction's SourceLoc);
/// the native backend compiles counter increments into the generated C++ and
/// ships the flat counter array across the dlopen C ABI (ddr_prof_read),
/// alongside a d2x-style static source map (ddr_prof_map) recording which
/// lines the generated code instruments.
///
/// Like recorder.h this header is deliberately STL-only and header-only:
/// generated native translation units include it through
/// runtime/native_prelude.h and must not depend on the compiler's own
/// libraries.
///
/// Threading contract: shards are dense per-worker arrays; each worker
/// increments only its own shard (no atomics needed — the scheduler barriers
/// order worker writes against the coordinator's take()).
///
//===----------------------------------------------------------------------===//

#ifndef DIDEROT_OBSERVE_PROFILER_H
#define DIDEROT_OBSERVE_PROFILER_H

#include <cstdint>
#include <vector>

namespace diderot::observe {

/// The profiled operation classes. The numeric values are part of the
/// ddr_prof_read/ddr_prof_map wire format and of ir::profClassOf()'s return
/// contract — append only.
enum class ProfClass : int {
  Probe = 0,      ///< field probes (voxel fetches of the reconstruction)
  KernelEval = 1, ///< kernel piece evaluations (KernelWeight / PolyEval)
  Inside = 2,     ///< `inside` bounds tests
  TensorOp = 3,   ///< tensor algebra (dot, norm, eigen, ...)
};
constexpr int NumProfClasses = 4;

inline const char *profClassName(ProfClass C) {
  switch (C) {
  case ProfClass::Probe:
    return "probe";
  case ProfClass::KernelEval:
    return "kernelEval";
  case ProfClass::Inside:
    return "inside";
  case ProfClass::TensorOp:
    return "tensorOp";
  }
  return "?";
}

/// Per-line profile record: dynamic execution counts plus the number of
/// static instrumentation sites the compiler attributed to the line (the
/// source-map half; 0 when unknown).
struct ProfileLine {
  int Line = 0;
  uint64_t Counts[NumProfClasses] = {};
  uint64_t Sites[NumProfClasses] = {};

  uint64_t total() const {
    uint64_t T = 0;
    for (uint64_t C : Counts)
      T += C;
    return T;
  }
};

/// Everything a profiled run reports back. Lines are sorted ascending and
/// include lines with static sites but zero dynamic counts (cold lines).
struct ProfileData {
  bool Enabled = false;
  std::vector<ProfileLine> Lines;

  ProfileLine *find(int Line) {
    for (ProfileLine &L : Lines)
      if (L.Line == Line)
        return &L;
    return nullptr;
  }
  const ProfileLine *find(int Line) const {
    return const_cast<ProfileData *>(this)->find(Line);
  }
  /// Find-or-insert keeping Lines sorted by line number.
  ProfileLine &at(int Line) {
    size_t I = 0;
    while (I < Lines.size() && Lines[I].Line < Line)
      ++I;
    if (I == Lines.size() || Lines[I].Line != Line)
      Lines.insert(Lines.begin() + static_cast<long>(I), ProfileLine{Line, {}, {}});
    return Lines[I];
  }
};

/// Collects per-worker (line, class) counters during one run. Reusable:
/// start() resets. The shard layout is dense — index = line * NumProfClasses
/// + class — so the increment compiled into hot loops is one add.
class Profiler {
public:
  /// Reset and arm for \p NumWorkers workers (>= 1) counting source lines
  /// 1..MaxLine (line 0 = "no location" is allocated but never reported).
  void start(int NumWorkers, int MaxLine) {
    MaxL = MaxLine < 0 ? 0 : MaxLine;
    Shards.assign(static_cast<size_t>(NumWorkers < 1 ? 1 : NumWorkers),
                  std::vector<uint64_t>(
                      static_cast<size_t>(MaxL + 1) * NumProfClasses, 0));
  }

  bool enabled() const { return !Shards.empty(); }
  int maxLine() const { return MaxL; }

  /// Worker \p W's dense counter array; the worker owns it exclusively.
  uint64_t *shard(int W) { return Shards[static_cast<size_t>(W)].data(); }

  static size_t index(int Line, ProfClass C) {
    return static_cast<size_t>(Line) * NumProfClasses + static_cast<int>(C);
  }

  /// Merge all shards into a sparse ProfileData and disarm.
  ProfileData take() {
    ProfileData R;
    R.Enabled = enabled();
    for (int Line = 1; Line <= MaxL; ++Line) {
      uint64_t Sum[NumProfClasses] = {};
      bool Any = false;
      for (const std::vector<uint64_t> &S : Shards)
        for (int C = 0; C < NumProfClasses; ++C) {
          Sum[C] += S[static_cast<size_t>(Line) * NumProfClasses +
                      static_cast<size_t>(C)];
          Any = Any || Sum[C] != 0;
        }
      if (!Any)
        continue;
      ProfileLine L;
      L.Line = Line;
      for (int C = 0; C < NumProfClasses; ++C)
        L.Counts[C] = Sum[C];
      R.Lines.push_back(L);
    }
    Shards.clear();
    return R;
  }

private:
  int MaxL = 0;
  std::vector<std::vector<uint64_t>> Shards;
};

//===----------------------------------------------------------------------===//
// Flat wire format
//===----------------------------------------------------------------------===//
//
// Generated shared objects expose profile counters (ddr_prof_read) and the
// static source map (ddr_prof_map) as the same flat uint64_t layout:
//   [0] number of records, then records of 3: line, class, value.
// ddr_prof_read values are dynamic counts; ddr_prof_map values are static
// instrumentation-site counts.

constexpr size_t ProfHeaderWords = 1;
constexpr size_t ProfRecordWords = 3;

inline std::vector<uint64_t> flattenProfile(const ProfileData &P, bool Sites) {
  std::vector<uint64_t> Out;
  size_t N = 0;
  Out.push_back(0);
  for (const ProfileLine &L : P.Lines)
    for (int C = 0; C < NumProfClasses; ++C) {
      uint64_t V = Sites ? L.Sites[C] : L.Counts[C];
      if (!V)
        continue;
      Out.push_back(static_cast<uint64_t>(L.Line));
      Out.push_back(static_cast<uint64_t>(C));
      Out.push_back(V);
      ++N;
    }
  Out[0] = N;
  return Out;
}

/// Merge flattened records into \p P (existing lines are updated, new ones
/// inserted sorted). Returns false if \p N is inconsistent with the header.
inline bool unflattenProfile(const uint64_t *Data, size_t N, ProfileData &P,
                             bool Sites) {
  if (N < ProfHeaderWords)
    return false;
  size_t Records = static_cast<size_t>(Data[0]);
  if (N < ProfHeaderWords + Records * ProfRecordWords)
    return false;
  P.Enabled = true;
  const uint64_t *R = Data + ProfHeaderWords;
  for (size_t I = 0; I < Records; ++I, R += ProfRecordWords) {
    int Line = static_cast<int>(R[0]);
    int Cls = static_cast<int>(R[1]);
    if (Line <= 0 || Cls < 0 || Cls >= NumProfClasses)
      return false;
    ProfileLine &L = P.at(Line);
    (Sites ? L.Sites : L.Counts)[Cls] += R[2];
  }
  return true;
}

} // namespace diderot::observe

#endif // DIDEROT_OBSERVE_PROFILER_H

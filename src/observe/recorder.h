//===--- observe/recorder.h - runtime telemetry collection -------------------===//
//
// Part of the Diderot-C++ reproduction (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The collection half of the observability subsystem: per-superstep,
/// per-worker counters and monotonic-clock spans recorded while the
/// bulk-synchronous schedulers run. The paper's evaluation (Section 6,
/// Table 2, Figure 12) is entirely about where superstep time goes; this
/// header gives every engine — interpreter and generated native code alike —
/// the same way of answering that question.
///
/// Deliberately STL-only and header-only: generated native translation units
/// include it transitively through runtime/scheduler.h and must not depend
/// on the compiler's own libraries (the same constraint as
/// runtime/native_prelude.h). The exporters (text summary, stats JSON,
/// Chrome trace) live in observe/observe.h and are host-side only.
///
/// Threading contract: the scheduler coordinator calls beginStep() before
/// the work-list is published and reads spans only after the
/// end-of-superstep barrier; each worker writes exclusively its own span
/// slot via commit(). The barriers provide the happens-before edges, so the
/// per-span fields need no atomics. The run-wide totals *are* atomics,
/// updated once per worker per superstep, and serve as an independent
/// cross-check of the span sums (tests and TSan guard them).
///
//===----------------------------------------------------------------------===//

#ifndef DIDEROT_OBSERVE_RECORDER_H
#define DIDEROT_OBSERVE_RECORDER_H

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <vector>

#include "observe/fault.h"
#include "observe/metrics.h"

namespace diderot::observe {

/// One worker's share of one superstep.
struct WorkerSpan {
  int Step = 0;
  uint64_t Updated = 0;          ///< strand updates executed
  uint64_t Stabilized = 0;       ///< updates that returned Stabilize
  uint64_t Died = 0;             ///< updates that returned Die
  uint64_t BlocksClaimed = 0;    ///< work-list blocks this worker claimed
  uint64_t LockAcquires = 0;     ///< work-list lock acquisitions
  uint64_t BarrierWaits = 0;     ///< barrier rendezvous this superstep
  uint64_t BeginNs = 0;          ///< span start, ns since run start
  uint64_t EndNs = 0;            ///< span end, ns since run start
};

/// Aggregate over all workers for one superstep. BeginNs/EndNs span the
/// earliest start and latest finish across workers.
struct StepStats {
  int Step = 0;
  uint64_t Updated = 0;
  uint64_t Stabilized = 0;
  uint64_t Died = 0;
  uint64_t BlocksClaimed = 0;
  uint64_t LockAcquires = 0;
  uint64_t BarrierWaits = 0;
  uint64_t BeginNs = 0;
  uint64_t EndNs = 0;
};

/// One strand lifecycle transition, recorded only when lifecycle tracing is
/// armed (Recorder::start with Lifecycle=true). Start fires once per strand
/// in its first superstep; Stabilize/Die/Fault fire on the update that
/// retires it (Fault only when a run policy's trap boundary is active).
enum class StrandEventKind : int { Start = 0, Stabilize = 1, Die = 2,
                                   Fault = 3 };

inline const char *strandEventName(StrandEventKind K) {
  switch (K) {
  case StrandEventKind::Start:
    return "start";
  case StrandEventKind::Stabilize:
    return "stabilize";
  case StrandEventKind::Die:
    return "die";
  case StrandEventKind::Fault:
    return "fault";
  }
  return "?";
}

struct StrandEvent {
  uint64_t Strand = 0;            ///< strand index in the instance
  int Step = 0;                   ///< superstep the transition happened in
  StrandEventKind Kind = StrandEventKind::Start;
  int Worker = 0;                 ///< worker that executed the update
  uint64_t Ns = 0;                ///< ns since run start
};

/// Everything a run reports back through rt::ProgramInstance::run. The
/// cheap fields (Steps, NumWorkers, WallNs) are always filled; the detailed
/// vectors are populated only when collection was requested (Enabled).
struct RunStats {
  int Steps = 0;         ///< supersteps executed
  int NumWorkers = 0;    ///< scheduler worker count (0 = sequential loop)
  bool Enabled = false;  ///< telemetry was collected for this run
  uint64_t WallNs = 0;   ///< wall-clock time of run()

  /// Per-superstep aggregates (empty unless Enabled).
  std::vector<StepStats> Supersteps;
  /// Per-worker timelines: Workers[w][s] is worker w's span in superstep s
  /// (one row even for the sequential loop; empty unless Enabled).
  std::vector<std::vector<WorkerSpan>> Workers;
  /// Run-wide totals accumulated through the Recorder's atomic counters —
  /// an independent cross-check of the span sums (Step/Begin/End unused).
  StepStats Totals;
  /// Strand lifecycle events, sorted by timestamp (empty unless lifecycle
  /// tracing was requested in addition to stats).
  std::vector<StrandEvent> Events;

  /// Registry snapshot at end of run: counters, gauges, and the superstep /
  /// imbalance / claim-latency / updates histograms (Enabled only when
  /// metrics collection was requested for the run).
  MetricsData Metrics;

  /// Why the run ended. Converged unless a RunPolicy stopped the run early
  /// or MaxSupersteps elapsed with strands still active. Always filled,
  /// independent of Enabled.
  RunOutcome Outcome = RunOutcome::Converged;
  /// Per-strand fault diagnostics trapped by the run policy's trap
  /// boundaries, in timestamp order (empty when no faults occurred).
  std::vector<StrandFault> Faults;

  uint64_t totalUpdated() const { return Totals.Updated; }
  uint64_t totalStabilized() const { return Totals.Stabilized; }
  uint64_t totalDied() const { return Totals.Died; }
  /// Strands retired (stabilized or died) — must equal
  /// numStable() + numDead() of the instance after the run. Faulted strands
  /// are accounted separately (Faults.size(), ProgramInstance::numFaulted).
  uint64_t totalRetired() const { return Totals.Stabilized + Totals.Died; }
};

/// Recompute \p R's per-superstep aggregates from its worker spans.
inline void aggregateSupersteps(RunStats &R) {
  R.Supersteps.clear();
  size_t Steps = 0;
  for (const std::vector<WorkerSpan> &Row : R.Workers)
    Steps = Row.size() > Steps ? Row.size() : Steps;
  R.Supersteps.resize(Steps);
  for (size_t S = 0; S < Steps; ++S) {
    StepStats &A = R.Supersteps[S];
    A.Step = static_cast<int>(S);
    bool First = true;
    for (const std::vector<WorkerSpan> &Row : R.Workers) {
      if (S >= Row.size())
        continue;
      const WorkerSpan &W = Row[S];
      A.Updated += W.Updated;
      A.Stabilized += W.Stabilized;
      A.Died += W.Died;
      A.BlocksClaimed += W.BlocksClaimed;
      A.LockAcquires += W.LockAcquires;
      A.BarrierWaits += W.BarrierWaits;
      A.BeginNs = First ? W.BeginNs : (W.BeginNs < A.BeginNs ? W.BeginNs
                                                             : A.BeginNs);
      A.EndNs = W.EndNs > A.EndNs ? W.EndNs : A.EndNs;
      First = false;
    }
  }
}

/// Collects spans and counters during one run. Reusable: start() resets.
class Recorder {
public:
  /// Reset and arm for a run with \p NumWorkers workers (a sequential run
  /// passes 0 and gets one timeline row). With \p Lifecycle set, per-strand
  /// start/stabilize/die events are recorded too (one event list per worker;
  /// each worker appends only to its own). With \p CollectMetrics set, the
  /// registry's gauges and histograms are armed as well: metrics() returns
  /// non-null and the schedulers record into it.
  void start(int NumWorkers, bool Lifecycle = false,
             bool CollectMetrics = false) {
    Rows.assign(static_cast<size_t>(NumWorkers < 1 ? 1 : NumWorkers), {});
    EventRows.clear();
    if (Lifecycle)
      EventRows.resize(Rows.size());
    TraceLifecycle = Lifecycle;
    MetricsArmed = CollectMetrics;
    FoldedSteps = 0;
    M.start(NumWorkers, CollectMetrics);
    T0 = Clock::now();
  }

  /// Nanoseconds since start() on the monotonic clock.
  uint64_t nowNs() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             T0)
            .count());
  }

  /// Whether strand lifecycle events should be recorded this run.
  bool lifecycle() const { return TraceLifecycle; }

  /// Worker \p W appends a lifecycle event. Each worker owns its own event
  /// list, so no synchronization is needed beyond the scheduler barriers.
  void event(int W, const StrandEvent &E) {
    EventRows[static_cast<size_t>(W)].push_back(E);
  }

  /// The live registry when metrics collection was armed for this run,
  /// null otherwise. Schedulers gate every gauge/histogram touch on this,
  /// so the unarmed hot path is unchanged.
  Metrics *metrics() { return MetricsArmed ? &M : nullptr; }

  /// Snapshot the registry (atomic loads only): safe to call from another
  /// thread — the embedded /metrics endpoint, a live ddr_metrics_read —
  /// while a run is executing.
  MetricsData metricsData() const { return M.snapshot(); }

  /// Credit \p N trapped strand faults to the faults counter (engines call
  /// this from RunControl's tally before take()).
  void countFault(uint64_t N) { M.counter(McFaults).add(N); }

  /// Coordinator only, before workers are released into superstep \p Step:
  /// allocate the step's span slot in every timeline row. When metrics are
  /// armed, the previous superstep is complete at this point (the scheduler
  /// barriers order every commit before the next beginStep), so fold it
  /// into the registry's histograms and merge the per-worker cells.
  void beginStep(int Step) {
    if (MetricsArmed)
      foldCompletedSteps();
    for (std::vector<WorkerSpan> &Row : Rows) {
      Row.emplace_back();
      Row.back().Step = Step;
    }
  }

  /// Worker \p W publishes its span for the current superstep (the one most
  /// recently opened with beginStep). Each worker owns its row; the
  /// scheduler barriers order beginStep/commit/reads. The run totals are
  /// registry counters — one source of truth shared with the exporters.
  void commit(int W, const WorkerSpan &S) {
    WorkerSpan &Dst = Rows[static_cast<size_t>(W)].back();
    int Step = Dst.Step;
    Dst = S;
    Dst.Step = Step;
    M.counter(McUpdated).add(S.Updated);
    M.counter(McStabilized).add(S.Stabilized);
    M.counter(McDied).add(S.Died);
    M.counter(McBlocksClaimed).add(S.BlocksClaimed);
    M.counter(McLockAcquires).add(S.LockAcquires);
    M.counter(McBarrierWaits).add(S.BarrierWaits);
  }

  /// Assemble the final RunStats after the schedulers returned. \p StepsRun
  /// is the scheduler's return value, \p NumWorkers its worker argument.
  RunStats take(int StepsRun, int NumWorkers) {
    RunStats R;
    R.Steps = StepsRun;
    R.NumWorkers = NumWorkers < 0 ? 0 : NumWorkers;
    R.Enabled = true;
    R.WallNs = nowNs();
    if (MetricsArmed) {
      foldCompletedSteps(); // the final superstep has no following beginStep
      R.Metrics = M.snapshot();
    }
    R.Workers = std::move(Rows);
    Rows.clear();
    R.Totals.Updated = M.counter(McUpdated).value();
    R.Totals.Stabilized = M.counter(McStabilized).value();
    R.Totals.Died = M.counter(McDied).value();
    R.Totals.BlocksClaimed = M.counter(McBlocksClaimed).value();
    R.Totals.LockAcquires = M.counter(McLockAcquires).value();
    R.Totals.BarrierWaits = M.counter(McBarrierWaits).value();
    for (std::vector<StrandEvent> &Row : EventRows)
      R.Events.insert(R.Events.end(), Row.begin(), Row.end());
    EventRows.clear();
    TraceLifecycle = false;
    std::sort(R.Events.begin(), R.Events.end(),
              [](const StrandEvent &A, const StrandEvent &B) {
                return A.Ns != B.Ns ? A.Ns < B.Ns : A.Strand < B.Strand;
              });
    aggregateSupersteps(R);
    return R;
  }

private:
  /// Fold every fully-committed superstep that has not been folded yet into
  /// the step-level histograms, then merge the per-worker histogram cells.
  /// Coordinator-only; called with all rows at the same length and every
  /// span up to that length committed.
  void foldCompletedSteps() {
    size_t Done = Rows.empty() ? 0 : Rows[0].size();
    for (; FoldedSteps < Done; ++FoldedSteps) {
      uint64_t Begin = ~uint64_t(0), End = 0, Updated = 0;
      uint64_t MinDur = ~uint64_t(0), MaxDur = 0;
      for (const std::vector<WorkerSpan> &Row : Rows) {
        const WorkerSpan &S = Row[FoldedSteps];
        Begin = S.BeginNs < Begin ? S.BeginNs : Begin;
        End = S.EndNs > End ? S.EndNs : End;
        Updated += S.Updated;
        uint64_t Dur = S.EndNs - S.BeginNs;
        MinDur = Dur < MinDur ? Dur : MinDur;
        MaxDur = Dur > MaxDur ? Dur : MaxDur;
      }
      M.hist(MhStepWallNs).record(End > Begin ? End - Begin : 0);
      M.hist(MhImbalanceNs).record(MaxDur - MinDur);
      M.hist(MhUpdatesPerStep).record(Updated);
      M.counter(McSupersteps).add(1);
    }
    M.mergeCells();
  }

  using Clock = std::chrono::steady_clock;
  Clock::time_point T0{};
  bool TraceLifecycle = false;
  bool MetricsArmed = false;
  size_t FoldedSteps = 0;
  std::vector<std::vector<WorkerSpan>> Rows;
  std::vector<std::vector<StrandEvent>> EventRows;
  Metrics M; ///< counters always live; gauges/hists only when armed
};

//===----------------------------------------------------------------------===//
// Flat wire format
//===----------------------------------------------------------------------===//
//
// Generated shared objects expose collected stats through the plain C ABI
// (ddr_stats_read) as a flat uint64_t array, so no C++ types cross the
// dlopen boundary. Layout:
//   [0] rows (timeline rows; >= 1)     [1] steps recorded per row
//   [2] NumWorkers                      [3] WallNs
//   [4..9] totals: updated, stabilized, died, blocks, locks, barriers
//   then rows * steps records of 8: updated, stabilized, died, blocks,
//   locks, barriers, beginNs, endNs (row-major: all steps of row 0 first).

constexpr size_t StatsHeaderWords = 10;
constexpr size_t StatsRecordWords = 8;

inline std::vector<uint64_t> flattenStats(const RunStats &R) {
  size_t Rows = R.Workers.size();
  size_t Steps = Rows ? R.Workers[0].size() : 0;
  std::vector<uint64_t> Out;
  Out.reserve(StatsHeaderWords + Rows * Steps * StatsRecordWords);
  Out.push_back(Rows);
  Out.push_back(Steps);
  Out.push_back(static_cast<uint64_t>(R.NumWorkers));
  Out.push_back(R.WallNs);
  Out.push_back(R.Totals.Updated);
  Out.push_back(R.Totals.Stabilized);
  Out.push_back(R.Totals.Died);
  Out.push_back(R.Totals.BlocksClaimed);
  Out.push_back(R.Totals.LockAcquires);
  Out.push_back(R.Totals.BarrierWaits);
  for (const std::vector<WorkerSpan> &Row : R.Workers)
    for (const WorkerSpan &W : Row) {
      Out.push_back(W.Updated);
      Out.push_back(W.Stabilized);
      Out.push_back(W.Died);
      Out.push_back(W.BlocksClaimed);
      Out.push_back(W.LockAcquires);
      Out.push_back(W.BarrierWaits);
      Out.push_back(W.BeginNs);
      Out.push_back(W.EndNs);
    }
  return Out;
}

/// Inverse of flattenStats. Returns false if \p N is too small or
/// inconsistent with the header.
inline bool unflattenStats(const uint64_t *Data, size_t N, RunStats &R) {
  if (N < StatsHeaderWords)
    return false;
  size_t Rows = static_cast<size_t>(Data[0]);
  size_t Steps = static_cast<size_t>(Data[1]);
  if (N < StatsHeaderWords + Rows * Steps * StatsRecordWords)
    return false;
  R = RunStats();
  R.Enabled = true;
  R.Steps = static_cast<int>(Steps);
  R.NumWorkers = static_cast<int>(Data[2]);
  R.WallNs = Data[3];
  R.Totals.Updated = Data[4];
  R.Totals.Stabilized = Data[5];
  R.Totals.Died = Data[6];
  R.Totals.BlocksClaimed = Data[7];
  R.Totals.LockAcquires = Data[8];
  R.Totals.BarrierWaits = Data[9];
  const uint64_t *P = Data + StatsHeaderWords;
  R.Workers.resize(Rows);
  for (size_t W = 0; W < Rows; ++W) {
    R.Workers[W].resize(Steps);
    for (size_t S = 0; S < Steps; ++S) {
      WorkerSpan &Sp = R.Workers[W][S];
      Sp.Step = static_cast<int>(S);
      Sp.Updated = P[0];
      Sp.Stabilized = P[1];
      Sp.Died = P[2];
      Sp.BlocksClaimed = P[3];
      Sp.LockAcquires = P[4];
      Sp.BarrierWaits = P[5];
      Sp.BeginNs = P[6];
      Sp.EndNs = P[7];
      P += StatsRecordWords;
    }
  }
  aggregateSupersteps(R);
  return true;
}

// Strand lifecycle events cross the dlopen boundary (ddr_trace_read) as
// their own flat array: [0] event count, then records of 5: strand, step,
// kind, worker, ns.

constexpr size_t EventHeaderWords = 1;
constexpr size_t EventRecordWords = 5;

inline std::vector<uint64_t> flattenEvents(const RunStats &R) {
  std::vector<uint64_t> Out;
  Out.reserve(EventHeaderWords + R.Events.size() * EventRecordWords);
  Out.push_back(R.Events.size());
  for (const StrandEvent &E : R.Events) {
    Out.push_back(E.Strand);
    Out.push_back(static_cast<uint64_t>(E.Step));
    Out.push_back(static_cast<uint64_t>(static_cast<int>(E.Kind)));
    Out.push_back(static_cast<uint64_t>(E.Worker));
    Out.push_back(E.Ns);
  }
  return Out;
}

/// Inverse of flattenEvents; replaces \p R.Events. Returns false if \p N is
/// inconsistent with the header or an event kind is out of range.
inline bool unflattenEvents(const uint64_t *Data, size_t N, RunStats &R) {
  if (N < EventHeaderWords)
    return false;
  size_t Count = static_cast<size_t>(Data[0]);
  if (N < EventHeaderWords + Count * EventRecordWords)
    return false;
  R.Events.clear();
  R.Events.reserve(Count);
  const uint64_t *P = Data + EventHeaderWords;
  for (size_t I = 0; I < Count; ++I, P += EventRecordWords) {
    if (P[2] > 3)
      return false;
    StrandEvent E;
    E.Strand = P[0];
    E.Step = static_cast<int>(P[1]);
    E.Kind = static_cast<StrandEventKind>(static_cast<int>(P[2]));
    E.Worker = static_cast<int>(P[3]);
    E.Ns = P[4];
    R.Events.push_back(E);
  }
  return true;
}

} // namespace diderot::observe

#endif // DIDEROT_OBSERVE_RECORDER_H

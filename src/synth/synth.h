//===--- synth/synth.h - synthetic dataset generators ---------------------===//
//
// Part of the Diderot-C++ reproduction (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Synthetic stand-ins for the paper's datasets (see DESIGN.md section 4).
/// The originals — a CT scan of a hand, a clinical lung CT, a portrait of
/// Denis Diderot — are not redistributable, so each generator produces data
/// with the same structural properties the benchmarks exercise:
///
///  * ctHand       : smooth 3-D scalar field whose isosurfaces form a
///                   palm-plus-digits blob union (volume rendering, curvature)
///  * lungVessels  : branching tubes with Gaussian cross-section whose ridge
///                   lines are the known centerlines (ridge3d)
///  * flow2d       : 2-D vector field of superposed vortices and a saddle
///                   (lic2d)
///  * noise2d      : deterministic white noise (LIC input texture)
///  * portrait     : smooth 2-D grayscale multi-blob image (isocontours)
///
/// All generators are deterministic.
///
//===----------------------------------------------------------------------===//

#ifndef DIDEROT_SYNTH_SYNTH_H
#define DIDEROT_SYNTH_SYNTH_H

#include <cstdint>

#include "image/image.h"

namespace diderot::synth {

/// A 3-D scalar volume shaped like a stylized hand: an ellipsoidal palm with
/// five capsule digits, rendered as a smooth density in [0, ~1.4]. The grid
/// is Size^3 with world extent [-1,1]^3.
Image ctHand(int Size);

/// A 3-D scalar volume containing a branching network of tubes with Gaussian
/// cross-sections (peak 1 on the centerline). Grid Size^3, world [-1,1]^3.
Image lungVessels(int Size);

/// A 2-D vector field: two counter-rotating vortices plus a saddle, sampled
/// on a Size x Size grid over world [-1,1]^2.
Image flow2d(int Size);

/// Deterministic white noise in [0,1] on a Size x Size grid, world [-1,1]^2.
Image noise2d(int Size, uint32_t Seed = 42);

/// Smooth grayscale "portrait": several Gaussian blobs over a gradient
/// background, values in [0, 60] (so the paper's isovalues 10/30/50 are
/// meaningful). Grid Size x Size, world [-1,1]^2.
Image portrait(int Size);

/// A sampled trilinear-friendly analytic field used by tests: the polynomial
/// f(x,y,z) = a + b x + c y + d z + e x y z sampled on a Size^3 grid over
/// [-1,1]^3. Reconstruction with any partition-of-unity kernel of the right
/// order recovers it exactly.
Image sampledPolynomial3d(int Size, double A, double B, double C, double D,
                          double E);

/// The 2-D analogue: f(x,y) = a + b x + c y + d x y.
Image sampledPolynomial2d(int Size, double A, double B, double C, double D);

/// The 2-D RGB transfer function for curvature-based rendering (paper
/// Figure 4's bivariate colormap): indexed by (kappa1, kappa2) over
/// [-1,1]^2, distinguishing convex (red), concave (blue), and saddle
/// (green) regions.
Image curvatureColormap(int Size);

} // namespace diderot::synth

#endif // DIDEROT_SYNTH_SYNTH_H

//===--- synth/synth.cpp --------------------------------------------------===//

#include "synth/synth.h"

#include <cmath>

namespace diderot::synth {

namespace {

/// World coordinate of sample index I on an axis of Size samples spanning
/// [-1, 1].
double axisWorld(int I, int Size) {
  return -1.0 + 2.0 * static_cast<double>(I) / static_cast<double>(Size - 1);
}

void setIsotropicOrientation(Image &Img, int Size) {
  double Sp = 2.0 / static_cast<double>(Size - 1);
  int D = Img.dim();
  std::vector<double> Dir(static_cast<size_t>(D * D), 0.0);
  for (int I = 0; I < D; ++I)
    Dir[static_cast<size_t>(I * D + I)] = Sp;
  Img.setOrientation(std::move(Dir), std::vector<double>(D, -1.0));
}

/// Smooth bump: exp(-k d^2).
double gauss(double DistSq, double K) { return std::exp(-K * DistSq); }

/// Squared distance from point P to the segment A..B (3-D).
double segmentDistSq(const double P[3], const double A[3], const double B[3]) {
  double AB[3] = {B[0] - A[0], B[1] - A[1], B[2] - A[2]};
  double AP[3] = {P[0] - A[0], P[1] - A[1], P[2] - A[2]};
  double L2 = AB[0] * AB[0] + AB[1] * AB[1] + AB[2] * AB[2];
  double T = L2 > 0 ? (AP[0] * AB[0] + AP[1] * AB[1] + AP[2] * AB[2]) / L2 : 0;
  T = std::min(1.0, std::max(0.0, T));
  double D[3] = {P[0] - (A[0] + T * AB[0]), P[1] - (A[1] + T * AB[1]),
                 P[2] - (A[2] + T * AB[2])};
  return D[0] * D[0] + D[1] * D[1] + D[2] * D[2];
}

} // namespace

Image ctHand(int Size) {
  Image Img(3, Shape{}, {Size, Size, Size});
  setIsotropicOrientation(Img, Size);

  // Palm: anisotropic Gaussian at the origin. Digits: five capsules fanning
  // out in +y, thumb off to the side.
  struct Capsule {
    double A[3], B[3], R;
  };
  const Capsule Digits[] = {
      {{-0.42, 0.10, 0.0}, {-0.55, 0.55, 0.10}, 0.085}, // thumb
      {{-0.22, 0.28, 0.0}, {-0.30, 0.80, 0.05}, 0.075},
      {{-0.02, 0.32, 0.0}, {-0.02, 0.88, 0.03}, 0.080},
      {{0.18, 0.30, 0.0}, {0.24, 0.82, 0.04}, 0.075},
      {{0.36, 0.24, 0.0}, {0.46, 0.68, 0.06}, 0.065},
  };

  int Idx[3];
  for (int Z = 0; Z < Size; ++Z)
    for (int Y = 0; Y < Size; ++Y)
      for (int X = 0; X < Size; ++X) {
        double P[3] = {axisWorld(X, Size), axisWorld(Y, Size),
                       axisWorld(Z, Size)};
        // Palm ellipsoid, center (0,-0.1,0), radii (0.45, 0.35, 0.16).
        double EX = P[0] / 0.45, EY = (P[1] + 0.1) / 0.35, EZ = P[2] / 0.16;
        double Val = gauss(EX * EX + EY * EY + EZ * EZ, 1.1);
        for (const Capsule &C : Digits) {
          double D2 = segmentDistSq(P, C.A, C.B);
          Val += gauss(D2 / (C.R * C.R), 1.0) * 0.9;
        }
        Idx[0] = X;
        Idx[1] = Y;
        Idx[2] = Z;
        Img.setSample(Idx, 0, Val);
      }
  return Img;
}

Image lungVessels(int Size) {
  Image Img(3, Shape{}, {Size, Size, Size});
  setIsotropicOrientation(Img, Size);

  // A binary-ish branching tree of segments: trunk splits twice.
  struct Seg {
    double A[3], B[3], Sigma;
  };
  const Seg Tree[] = {
      {{0.0, -0.85, 0.0}, {0.0, -0.25, 0.0}, 0.10},      // trunk
      {{0.0, -0.25, 0.0}, {-0.45, 0.25, 0.15}, 0.075},   // left main
      {{0.0, -0.25, 0.0}, {0.45, 0.25, -0.15}, 0.075},   // right main
      {{-0.45, 0.25, 0.15}, {-0.70, 0.70, 0.05}, 0.055}, // left upper
      {{-0.45, 0.25, 0.15}, {-0.20, 0.70, 0.35}, 0.055}, // left inner
      {{0.45, 0.25, -0.15}, {0.70, 0.70, -0.05}, 0.055}, // right upper
      {{0.45, 0.25, -0.15}, {0.20, 0.70, -0.35}, 0.055}, // right inner
  };

  int Idx[3];
  for (int Z = 0; Z < Size; ++Z)
    for (int Y = 0; Y < Size; ++Y)
      for (int X = 0; X < Size; ++X) {
        double P[3] = {axisWorld(X, Size), axisWorld(Y, Size),
                       axisWorld(Z, Size)};
        double Val = 0.0;
        for (const Seg &S : Tree) {
          double D2 = segmentDistSq(P, S.A, S.B);
          // Gaussian cross-sections, summed: smooth everywhere (a max()
          // would introduce crease ridges that are not centerlines), and
          // the ridge lines coincide with the centerlines away from
          // junctions.
          Val += gauss(D2 / (2.0 * S.Sigma * S.Sigma), 1.0);
        }
        Idx[0] = X;
        Idx[1] = Y;
        Idx[2] = Z;
        Img.setSample(Idx, 0, Val);
      }
  return Img;
}

Image flow2d(int Size) {
  Image Img(2, Shape{2}, {Size, Size});
  setIsotropicOrientation(Img, Size);

  // Two vortices (opposite spin) + a saddle at the origin. Velocities stay
  // O(1) over the domain.
  struct Vortex {
    double CX, CY, Strength;
  };
  const Vortex Vs[] = {{-0.45, 0.0, 1.4}, {0.45, 0.0, -1.4}};

  int Idx[2];
  for (int Y = 0; Y < Size; ++Y)
    for (int X = 0; X < Size; ++X) {
      double PX = axisWorld(X, Size), PY = axisWorld(Y, Size);
      double VX = 0.30 * PX, VY = -0.30 * PY; // saddle component
      for (const Vortex &V : Vs) {
        double DX = PX - V.CX, DY = PY - V.CY;
        double R2 = DX * DX + DY * DY;
        double Core = V.Strength * std::exp(-3.0 * R2);
        VX += -DY * Core;
        VY += DX * Core;
      }
      Idx[0] = X;
      Idx[1] = Y;
      Img.setSample(Idx, 0, VX);
      Img.setSample(Idx, 1, VY);
    }
  return Img;
}

Image noise2d(int Size, uint32_t Seed) {
  Image Img(2, Shape{}, {Size, Size});
  setIsotropicOrientation(Img, Size);

  uint32_t State = Seed ? Seed : 1;
  auto Next = [&State]() {
    // xorshift32: deterministic, portable.
    State ^= State << 13;
    State ^= State >> 17;
    State ^= State << 5;
    return State;
  };
  int Idx[2];
  for (int Y = 0; Y < Size; ++Y)
    for (int X = 0; X < Size; ++X) {
      Idx[0] = X;
      Idx[1] = Y;
      Img.setSample(Idx, 0,
                    static_cast<double>(Next()) / 4294967296.0);
    }
  return Img;
}

Image portrait(int Size) {
  Image Img(2, Shape{}, {Size, Size});
  setIsotropicOrientation(Img, Size);

  struct Blob {
    double CX, CY, K, Amp;
  };
  // A face-like arrangement: head, two eyes (dark), mouth, plus a background
  // ramp so all three paper isovalues (10/30/50) produce contours.
  const Blob Blobs[] = {
      {0.0, 0.1, 2.2, 55.0},    // head
      {-0.22, 0.28, 60.0, -25.0}, // left eye
      {0.22, 0.28, 60.0, -25.0},  // right eye
      {0.0, -0.25, 28.0, -18.0},  // mouth
      {-0.6, -0.6, 4.0, 30.0},    // shoulder highlight
  };
  int Idx[2];
  for (int Y = 0; Y < Size; ++Y)
    for (int X = 0; X < Size; ++X) {
      double PX = axisWorld(X, Size), PY = axisWorld(Y, Size);
      double Val = 8.0 + 6.0 * (PX + 1.0); // gentle ramp, 8..20
      for (const Blob &B : Blobs) {
        double DX = PX - B.CX, DY = PY - B.CY;
        Val += B.Amp * std::exp(-B.K * (DX * DX + DY * DY));
      }
      Idx[0] = X;
      Idx[1] = Y;
      Img.setSample(Idx, 0, std::max(0.0, Val));
    }
  return Img;
}

Image sampledPolynomial3d(int Size, double A, double B, double C, double D,
                          double E) {
  Image Img(3, Shape{}, {Size, Size, Size});
  setIsotropicOrientation(Img, Size);
  int Idx[3];
  for (int Z = 0; Z < Size; ++Z)
    for (int Y = 0; Y < Size; ++Y)
      for (int X = 0; X < Size; ++X) {
        double PX = axisWorld(X, Size), PY = axisWorld(Y, Size),
               PZ = axisWorld(Z, Size);
        Idx[0] = X;
        Idx[1] = Y;
        Idx[2] = Z;
        Img.setSample(Idx, 0, A + B * PX + C * PY + D * PZ + E * PX * PY * PZ);
      }
  return Img;
}

Image sampledPolynomial2d(int Size, double A, double B, double C, double D) {
  Image Img(2, Shape{}, {Size, Size});
  setIsotropicOrientation(Img, Size);
  int Idx[2];
  for (int Y = 0; Y < Size; ++Y)
    for (int X = 0; X < Size; ++X) {
      double PX = axisWorld(X, Size), PY = axisWorld(Y, Size);
      Idx[0] = X;
      Idx[1] = Y;
      Img.setSample(Idx, 0, A + B * PX + C * PY + D * PX * PY);
    }
  return Img;
}

Image curvatureColormap(int Size) {
  Image Img(2, Shape{3}, {Size, Size});
  setIsotropicOrientation(Img, Size);
  int Idx[2];
  for (int Y = 0; Y < Size; ++Y)
    for (int X = 0; X < Size; ++X) {
      double K1 = axisWorld(X, Size), K2 = axisWorld(Y, Size);
      // Convexity measure: both curvatures negative -> convex surface seen
      // from outside (red); both positive -> concave (blue); mixed -> saddle
      // (green); flat -> gray.
      double Mag = std::min(1.0, std::sqrt(K1 * K1 + K2 * K2));
      double Red = std::max(0.0, -0.5 * (K1 + K2));
      double Blue = std::max(0.0, 0.5 * (K1 + K2));
      double Green = std::max(0.0, std::min(1.0, -K1 * K2 * 4.0));
      double Base = 0.75 * (1.0 - Mag);
      Idx[0] = X;
      Idx[1] = Y;
      Img.setSample(Idx, 0, std::min(1.0, Base + Red));
      Img.setSample(Idx, 1, std::min(1.0, Base + Green));
      Img.setSample(Idx, 2, std::min(1.0, Base + Blue));
    }
  return Img;
}

} // namespace diderot::synth

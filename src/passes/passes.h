//===--- passes/passes.h - compiler pass entry points -----------------------===//
//
// Part of the Diderot-C++ reproduction (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The pass pipeline of Section 5 of the paper:
///
///   HighIR --normalizeFields--> normalized HighIR
///          --lowerToMid-------> MidIR   (probes become transforms +
///                                        convolutions + kernel evaluations)
///          --contract/VN-----> optimized MidIR
///          --lowerToLow-------> LowIR   (tensors scalarized, kernel
///                                        evaluations become Horner code)
///
/// `contract` is the paper's shrinking optimization (an extended constant
/// folding + dead-code elimination, after Appel–Jim); `valueNumber` is the
/// paper's value numbering (Briggs–Cooper–Simpson), which on this IR also
/// performs the domain-specific eliminations the paper highlights: shared
/// convolutions between F(x) and ∇F(x), and Hessian symmetry.
///
//===----------------------------------------------------------------------===//

#ifndef DIDEROT_PASSES_PASSES_H
#define DIDEROT_PASSES_PASSES_H

#include "ir/ir.h"
#include "support/result.h"

namespace diderot::passes {

/// Field normalization (paper Section 5.2, Figure 10): rewrites field
/// expressions until (1) all differentiation is pushed onto convolution
/// kernels, (2) probed fields are defined directly by convolutions, and
/// (3) field arithmetic has been lowered to tensor arithmetic at the probe
/// sites. Runs on HighIR; leaves the module at HighIR.
Status normalizeFields(ir::Module &M);

/// Probe expansion (paper Section 5.3): HighIR -> MidIR. Every probe becomes
/// a world-to-index transform, separable convolution sums over the kernel
/// support with per-axis kernel-derivative selection, and M^{-T} transforms
/// of covariant (derivative) result axes. `inside` becomes index-space
/// bounds tests.
Status lowerToMid(ir::Module &M);

/// Contraction: constant folding (including folding Ifs with constant
/// conditions), algebraic identities, and dead-code elimination, iterated to
/// a fixed point. Valid at every level.
void contract(ir::Module &M);

/// Value numbering over the structured IR (scoped hash table: values
/// available in enclosing regions dominate). Pure ops only. Run contract()
/// afterwards to delete the replaced instructions.
void valueNumber(ir::Module &M);

/// Scalarization (paper Section 5.3's final step): MidIR -> LowIR. Tensor
/// and sequence values are exploded into scalar components, tensor ops are
/// unrolled, kernel evaluations become Horner polynomial evaluation with the
/// statically-selected piece coefficients, and eigendecompositions become
/// multi-result runtime calls.
Status lowerToLow(ir::Module &M);

/// Pipeline options (used by the driver and the ablation benchmarks).
struct PipelineOptions {
  bool EnableContract = true;
  bool EnableValueNumbering = true;
};

/// Run High -> Low with the standard phase ordering.
Status runPipeline(ir::Module &M, const PipelineOptions &Opts = {});

} // namespace diderot::passes

#endif // DIDEROT_PASSES_PASSES_H

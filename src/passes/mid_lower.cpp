//===--- passes/mid_lower.cpp - probe expansion (HighIR -> MidIR) -----------===//
//
// Implements Section 5.3 of the paper: "code that probes a tensor field is
// translated into code that maps the world-space position to image space and
// then convolves the image values from the neighborhood of the position
// using a kernel... the partial-differentiation operators tell us where to
// use h and where to use the first derivative h' in the reconstruction."
//
// A probe of V ⊛ ∂^m h at x becomes:
//   xi   = M^{-1} x                       (WorldToImage)
//   n_a  = floor(xi_a),  f_a = xi_a - n_a  per axis
//   w[a][l][t] = h^(l)(f_a - t)           (KernelWeight per axis/level/tap)
//   for every range component c and derivative multi-index mu:
//     sum over support taps of V[n + t][c] * prod_a w[a][cnt_a(mu)][t_a]
//   covariant correction: each derivative axis is transformed to world space
//   by M^{-T} (ImageGradXform), gradients being covariant quantities.
//
// `inside(x, V ⊛ h)` becomes index-space bounds tests (InsideTest) with the
// kernel's support as the margin.
//
//===----------------------------------------------------------------------===//

#include <cassert>
#include <map>

#include "kernels/kernel.h"
#include "passes/passes.h"
#include "support/strings.h"

namespace diderot::passes {

namespace {

using ir::Instr;
using ir::Op;
using ir::ValueId;

/// What we remember about a (dropped) Convolve instruction.
struct ConvInfo {
  ValueId Img = ir::NoValue;
  std::string Kernel;
  int Deriv = 0;
};

class MidLowering {
public:
  explicit MidLowering(ir::Function &F) : F(F) {}

  Status run() {
    Status S = runRegion(F.Body);
    if (!S.isOk())
      return Status::error(strf("@", F.Name, ": ", S.message()));
    return Status::ok();
  }

private:
  ir::Function &F;
  std::map<ValueId, ConvInfo> Convs;
  std::map<ValueId, ValueId> Replace;
  /// Source location of the instruction currently being expanded; stamped
  /// onto everything emit() produces so probe/inside expansions stay
  /// attributable to their DSL line (the profiler keys on it).
  SourceLoc CurLoc;

  ValueId mapped(ValueId V) const {
    auto It = Replace.find(V);
    return It == Replace.end() ? V : It->second;
  }

  ValueId emit(std::vector<Instr> &Out, Op O, std::vector<ValueId> Operands,
               Type Ty, ir::Attr A = std::monostate{}) {
    Instr I(O);
    I.Loc = CurLoc;
    I.Operands = std::move(Operands);
    I.A = std::move(A);
    ValueId R = F.newValue(std::move(Ty));
    I.Results.push_back(R);
    Out.push_back(std::move(I));
    return R;
  }

  /// Emit the world->index bookkeeping shared by probes and inside tests:
  /// per-axis integer base (int) and fractional position (real).
  void emitBase(std::vector<Instr> &Out, ValueId Img, ValueId Pos, int D,
                std::vector<ValueId> &BaseIdx, std::vector<ValueId> &Frac) {
    Type XiTy = D == 1 ? Type::real() : Type::vec(D);
    ValueId Xi = emit(Out, Op::WorldToImage, {Img, Pos}, XiTy);
    for (int A = 0; A < D; ++A) {
      ValueId XiA = D == 1 ? Xi
                           : emit(Out, Op::TensorIndex, {Xi}, Type::real(),
                                  std::vector<int>{A});
      ValueId Fl = emit(Out, Op::Floor, {XiA}, Type::real());
      ValueId Fr = emit(Out, Op::Sub, {XiA, Fl}, Type::real());
      ValueId N = emit(Out, Op::RealToInt, {Fl}, Type::integer());
      BaseIdx.push_back(N);
      Frac.push_back(Fr);
    }
  }

  Status expandProbe(std::vector<Instr> &Out, const Instr &ProbeI) {
    const ConvInfo &C = Convs.at(ProbeI.Operands[0]);
    ValueId Pos = mapped(ProbeI.Operands[1]);
    ValueId Img = C.Img;
    // Copy, not reference: emit() grows the value-type table, invalidating
    // references into it.
    Type ImgTy = F.typeOf(Img);
    assert(ImgTy.isImage() && "probe of a non-image convolution");
    int D = ImgTy.dim();
    Shape BaseShape = ImgTy.shape();
    int M = C.Deriv;
    const Kernel *K = kernels::byName(C.Kernel);
    if (!K)
      return Status::error(strf("unknown kernel '", C.Kernel, "'"));
    int S = K->support();

    if (M >= 2 && !BaseShape.isScalar())
      return Status::error(
          "derivatives beyond first order of tensor-valued fields are not "
          "supported");
    if (M > 2)
      return Status::error(
          "derivatives beyond second order are not supported");

    std::vector<ValueId> BaseIdx, Frac;
    emitBase(Out, Img, Pos, D, BaseIdx, Frac);

    // Kernel weights per (axis, derivative level, tap).
    int Taps = 2 * S;
    auto WIdx = [&](int A, int L, int T) {
      return (A * (M + 1) + L) * Taps + T;
    };
    std::vector<ValueId> W(static_cast<size_t>(D * (M + 1) * Taps));
    for (int A = 0; A < D; ++A)
      for (int L = 0; L <= M; ++L)
        for (int T = 0; T < Taps; ++T) {
          int Off = T + 1 - S;
          W[static_cast<size_t>(WIdx(A, L, T))] =
              emit(Out, Op::KernelWeight, {Frac[static_cast<size_t>(A)]},
                   Type::real(), ir::KernelWeightAttr{C.Kernel, L, Off});
        }

    // Convolution sums, one per (component, derivative multi-index).
    int NComp = BaseShape.numComponents();
    int NMu = 1;
    for (int I = 0; I < M; ++I)
      NMu *= D;
    std::vector<ValueId> Comps;
    Comps.reserve(static_cast<size_t>(NComp * NMu));
    int NTuples = 1;
    for (int A = 0; A < D; ++A)
      NTuples *= Taps;
    for (int Cc = 0; Cc < NComp; ++Cc) {
      for (int Mu = 0; Mu < NMu; ++Mu) {
        // Per-axis derivative counts from the multi-index.
        int Cnt[3] = {0, 0, 0};
        int Rem = Mu;
        for (int I = 0; I < M; ++I) {
          Cnt[Rem % D]++;
          Rem /= D;
        }
        // NOTE: the multi-index digits enumerate mu in "last axis fastest"
        // order; since only the per-axis counts matter for the weights, the
        // ordering convention only needs to match the TensorCons below.
        ValueId Acc = ir::NoValue;
        for (int Tuple = 0; Tuple < NTuples; ++Tuple) {
          std::vector<int> Offsets(static_cast<size_t>(D));
          int TRem = Tuple;
          for (int A = 0; A < D; ++A) {
            Offsets[static_cast<size_t>(A)] = (TRem % Taps) + 1 - S;
            TRem /= Taps;
          }
          std::vector<ValueId> VoxOps = {Img};
          for (ValueId B : BaseIdx)
            VoxOps.push_back(B);
          ValueId V = emit(Out, Op::VoxelLoad, VoxOps, Type::real(),
                           ir::VoxelAttr{Offsets, Cc});
          ValueId P = V;
          for (int A = 0; A < D; ++A) {
            int T = Offsets[static_cast<size_t>(A)] + S - 1;
            P = emit(Out, Op::Mul,
                     {P, W[static_cast<size_t>(WIdx(A, Cnt[A], T))]},
                     Type::real());
          }
          Acc = Acc == ir::NoValue
                    ? P
                    : emit(Out, Op::Add, {Acc, P}, Type::real());
        }
        Comps.push_back(Acc);
      }
    }

    // Assemble the index-space result tensor.
    Shape ResShape = BaseShape;
    for (int I = 0; I < M && D > 1; ++I)
      ResShape = ResShape.append(D);
    ValueId IdxRes;
    if (ResShape.isScalar())
      IdxRes = Comps[0];
    else {
      // Mu digits are "last axis fastest", matching row-major order of the
      // appended derivative axes.
      IdxRes = emit(Out, Op::TensorCons, Comps, Type::tensor(ResShape));
    }

    // Covariant correction: transform each derivative axis by M^{-T}.
    ValueId Res = IdxRes;
    if (M > 0) {
      if (D == 1) {
        // ImageGradXform of a 1-D image is the scalar 1/spacing.
        ValueId Mt = emit(Out, Op::ImageGradXform, {Img}, Type::real());
        for (int I = 0; I < M; ++I)
          Res = emit(Out, Op::Mul, {Res, Mt}, Type::real());
      } else {
        ValueId Mt =
            emit(Out, Op::ImageGradXform, {Img}, Type::tensor(Shape{D, D}));
        ValueId MtT =
            emit(Out, Op::Transpose, {Mt}, Type::tensor(Shape{D, D}));
        // Right-multiplying by Mt^T transforms the last axis; for the
        // scalar-field Hessian the remaining (first) axis is transformed by
        // left-multiplying with Mt: H_w = M^{-T} H_i M^{-1}.
        Res = emit(Out, Op::Dot, {Res, MtT}, Type::tensor(ResShape));
        if (M == 2)
          Res = emit(Out, Op::Dot, {Mt, Res}, Type::tensor(ResShape));
      }
    }
    Replace[ProbeI.Results[0]] = Res;
    return Status::ok();
  }

  Status expandInside(std::vector<Instr> &Out, const Instr &InsideI) {
    const ConvInfo &C = Convs.at(InsideI.Operands[1]);
    ValueId Pos = mapped(InsideI.Operands[0]);
    ValueId Img = C.Img;
    int D = F.typeOf(Img).dim();
    const Kernel *K = kernels::byName(C.Kernel);
    if (!K)
      return Status::error(strf("unknown kernel '", C.Kernel, "'"));
    std::vector<ValueId> BaseIdx, Frac;
    emitBase(Out, Img, Pos, D, BaseIdx, Frac);
    std::vector<ValueId> Ops = {Img};
    for (ValueId B : BaseIdx)
      Ops.push_back(B);
    ValueId In = emit(Out, Op::InsideTest, Ops, Type::boolean(),
                      static_cast<int64_t>(K->support()));
    Replace[InsideI.Results[0]] = In;
    return Status::ok();
  }

  Status runRegion(ir::Region &R) {
    std::vector<Instr> Out;
    Out.reserve(R.Body.size());
    for (Instr &I : R.Body) {
      // Apply pending replacements to the operands first.
      for (ValueId &V : I.Operands)
        V = mapped(V);
      CurLoc = I.Loc;
      switch (I.Opcode) {
      case Op::Convolve: {
        const auto &A = std::get<ir::ConvolveAttr>(I.A);
        Convs[I.Results[0]] = {I.Operands[0], A.Kernel, A.Deriv};
        continue; // dropped
      }
      case Op::Probe: {
        Status St = expandProbe(Out, I);
        if (!St.isOk())
          return St;
        continue;
      }
      case Op::FieldInside: {
        Status St = expandInside(Out, I);
        if (!St.isOk())
          return St;
        continue;
      }
      case Op::If: {
        for (ir::Region &Sub : I.Regions) {
          Status St = runRegion(Sub);
          if (!St.isOk())
            return St;
        }
        Out.push_back(std::move(I));
        continue;
      }
      default:
        assert(!(ir::opLevels(I.Opcode) == ir::High) &&
               "unexpected High-only op after normalization");
        Out.push_back(std::move(I));
        continue;
      }
    }
    R.Body = std::move(Out);
    return Status::ok();
  }
};

} // namespace

Status lowerToMid(ir::Module &M) {
  assert(M.CurLevel == ir::High && "probe expansion consumes HighIR");
  std::vector<ir::Function *> Fns = {&M.GlobalInit, &M.StrandInit, &M.Update,
                                     &M.CreateArgs};
  if (M.hasStabilize())
    Fns.push_back(&M.Stabilize);
  for (ir::Function &F : M.InputDefaults)
    Fns.push_back(&F);
  for (size_t I = 0; I < M.IterLo.size(); ++I) {
    Fns.push_back(&M.IterLo[I]);
    Fns.push_back(&M.IterHi[I]);
  }
  for (ir::Function *F : Fns) {
    Status S = MidLowering(*F).run();
    if (!S.isOk())
      return S;
  }
  M.CurLevel = ir::Mid;
  std::string Err = ir::verify(M);
  if (!Err.empty())
    return Status::error(strf("after probe expansion: ", Err));
  return Status::ok();
}

} // namespace diderot::passes

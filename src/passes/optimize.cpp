//===--- passes/optimize.cpp - contraction and value numbering --------------===//
//
// The paper's domain-specific optimizations (Section 5.4): "we implement an
// extended form of constant folding and dead-code elimination that shrinks
// (or contracts) the program, and we eliminate redundant computations using
// value numbering. While these are optimizations that are found in many
// compilers, when they are combined with the domain-specific operators in
// our IR, they produce domain-specific optimizations... if a program probes
// both a field F and the gradient field ∇F at the same position, there are
// redundant convolution computations that can be detected and eliminated.
// Another example is the symmetry of the Hessian, which is also detected by
// our value-numbering pass."
//
// On our IR those fall out exactly as described: probes expand into
// WorldToImage / KernelWeight / VoxelLoad chains, and identical chains (the
// shared taps of F and ∇F, or the (i,j) and (j,i) Hessian components, whose
// per-axis derivative counts coincide) get the same value numbers.
//
//===----------------------------------------------------------------------===//

#include <cassert>
#include <cmath>
#include <map>
#include <optional>
#include <set>

#include "kernels/kernel.h"
#include "passes/passes.h"
#include "support/strings.h"
#include "tensor/eigen.h"

namespace diderot::passes {

namespace {

using ir::Instr;
using ir::Op;
using ir::ValueId;

//===----------------------------------------------------------------------===//
// Constant values
//===----------------------------------------------------------------------===//

/// A compile-time constant. Reals and tensors share the Tensor arm.
using CVal = std::variant<bool, int64_t, Tensor, std::string>;

bool cBool(const CVal &V) { return std::get<bool>(V); }
int64_t cInt(const CVal &V) { return std::get<int64_t>(V); }
double cReal(const CVal &V) { return std::get<Tensor>(V).asScalar(); }
const Tensor &cTensor(const CVal &V) { return std::get<Tensor>(V); }

CVal mkReal(double D) { return Tensor::scalar(D); }

/// Fold one pure instruction over constant operands; nullopt when the op is
/// not foldable (or folding would be unsafe, e.g. int division by zero).
std::optional<std::vector<CVal>> foldOp(const Instr &I,
                                        const std::vector<CVal> &Ops,
                                        const ir::Function &F) {
  auto One = [](CVal V) { return std::vector<CVal>{std::move(V)}; };
  const Type &ResTy =
      I.Results.empty() ? Type::error() : F.typeOf(I.Results[0]);
  bool IntRes = ResTy.isInt();

  auto Arith = [&](auto IntFn, auto RealFn) -> std::optional<std::vector<CVal>> {
    if (IntRes)
      return One(CVal(IntFn(cInt(Ops[0]), cInt(Ops[1]))));
    if (ResTy.isReal() && std::holds_alternative<Tensor>(Ops[0]) &&
        std::holds_alternative<Tensor>(Ops[1]))
      return One(mkReal(RealFn(cReal(Ops[0]), cReal(Ops[1]))));
    return std::nullopt;
  };

  switch (I.Opcode) {
  case Op::Add:
    if (ResTy.isTensor() && !ResTy.isReal())
      return One(CVal(add(cTensor(Ops[0]), cTensor(Ops[1]))));
    return Arith([](int64_t A, int64_t B) { return A + B; },
                 [](double A, double B) { return A + B; });
  case Op::Sub:
    if (ResTy.isTensor() && !ResTy.isReal())
      return One(CVal(sub(cTensor(Ops[0]), cTensor(Ops[1]))));
    return Arith([](int64_t A, int64_t B) { return A - B; },
                 [](double A, double B) { return A - B; });
  case Op::Mul:
    return Arith([](int64_t A, int64_t B) { return A * B; },
                 [](double A, double B) { return A * B; });
  case Op::Div:
    if (IntRes) {
      if (cInt(Ops[1]) == 0)
        return std::nullopt; // preserve the runtime trap semantics
      return One(CVal(cInt(Ops[0]) / cInt(Ops[1])));
    }
    return Arith([](int64_t A, int64_t B) { return A / B; },
                 [](double A, double B) { return A / B; });
  case Op::Mod:
    if (cInt(Ops[1]) == 0)
      return std::nullopt;
    return One(CVal(cInt(Ops[0]) % cInt(Ops[1])));
  case Op::Neg:
    if (IntRes)
      return One(CVal(-cInt(Ops[0])));
    return One(CVal(neg(cTensor(Ops[0]))));
  case Op::Min:
    return Arith([](int64_t A, int64_t B) { return std::min(A, B); },
                 [](double A, double B) { return std::min(A, B); });
  case Op::Max:
    return Arith([](int64_t A, int64_t B) { return std::max(A, B); },
                 [](double A, double B) { return std::max(A, B); });
  case Op::Scale:
    return One(CVal(scale(cReal(Ops[0]), cTensor(Ops[1]))));
  case Op::DivScale:
    return One(CVal(divide(cTensor(Ops[0]), cReal(Ops[1]))));
  case Op::Pow:
    return One(mkReal(std::pow(cReal(Ops[0]), cReal(Ops[1]))));
  case Op::Dot:
    return One(CVal(dot(cTensor(Ops[0]), cTensor(Ops[1]))));
  case Op::Cross:
    return One(CVal(cross(cTensor(Ops[0]), cTensor(Ops[1]))));
  case Op::Outer:
    return One(CVal(outer(cTensor(Ops[0]), cTensor(Ops[1]))));
  case Op::Norm:
    return One(mkReal(norm(cTensor(Ops[0]))));
  case Op::Normalize:
    return One(CVal(normalize(cTensor(Ops[0]))));
  case Op::Trace:
    return One(mkReal(trace(cTensor(Ops[0]))));
  case Op::Det:
    return One(mkReal(det(cTensor(Ops[0]))));
  case Op::Inverse: {
    if (det(cTensor(Ops[0])) == 0.0)
      return std::nullopt;
    return One(CVal(inverse(cTensor(Ops[0]))));
  }
  case Op::Transpose:
    return One(CVal(transpose(cTensor(Ops[0]))));
  case Op::Modulate:
    return One(CVal(modulate(cTensor(Ops[0]), cTensor(Ops[1]))));
  case Op::Lerp:
    return One(CVal(lerp(cTensor(Ops[0]), cTensor(Ops[1]), cReal(Ops[2]))));
  case Op::Evals:
    return One(CVal(eigenvalues(cTensor(Ops[0]))));
  case Op::Evecs:
    return One(CVal(eigenvectors(cTensor(Ops[0]))));
  case Op::TensorCons: {
    Tensor T{ResTy.shape()};
    for (size_t K = 0; K < Ops.size(); ++K)
      T[static_cast<int>(K)] = cReal(Ops[K]);
    return One(CVal(std::move(T)));
  }
  case Op::TensorIndex: {
    const Tensor &T = cTensor(Ops[0]);
    const std::vector<int> &Idx = std::get<std::vector<int>>(I.A);
    // Flatten the (possibly partial) index.
    int Flat = 0;
    for (size_t K = 0; K < Idx.size(); ++K)
      Flat = Flat * T.shape()[static_cast<int>(K)] + Idx[K];
    int Rest = 1;
    for (int A = static_cast<int>(Idx.size()); A < T.shape().order(); ++A)
      Rest *= T.shape()[A];
    if (Rest == 1)
      return One(mkReal(T[Flat]));
    Tensor Sub{ResTy.shape()};
    for (int K = 0; K < Rest; ++K)
      Sub[K] = T[Flat * Rest + K];
    return One(CVal(std::move(Sub)));
  }
  case Op::Sqrt:
    return One(mkReal(std::sqrt(cReal(Ops[0]))));
  case Op::Sin:
    return One(mkReal(std::sin(cReal(Ops[0]))));
  case Op::Cos:
    return One(mkReal(std::cos(cReal(Ops[0]))));
  case Op::Tan:
    return One(mkReal(std::tan(cReal(Ops[0]))));
  case Op::Asin:
    return One(mkReal(std::asin(cReal(Ops[0]))));
  case Op::Acos:
    return One(mkReal(std::acos(cReal(Ops[0]))));
  case Op::Atan:
    return One(mkReal(std::atan(cReal(Ops[0]))));
  case Op::Atan2:
    return One(mkReal(std::atan2(cReal(Ops[0]), cReal(Ops[1]))));
  case Op::Exp:
    return One(mkReal(std::exp(cReal(Ops[0]))));
  case Op::Log:
    return One(mkReal(std::log(cReal(Ops[0]))));
  case Op::Floor:
    return One(mkReal(std::floor(cReal(Ops[0]))));
  case Op::Ceil:
    return One(mkReal(std::ceil(cReal(Ops[0]))));
  case Op::Round:
    return One(mkReal(std::round(cReal(Ops[0]))));
  case Op::Trunc:
    return One(mkReal(std::trunc(cReal(Ops[0]))));
  case Op::Abs:
    if (IntRes)
      return One(CVal(std::abs(cInt(Ops[0]))));
    return One(mkReal(std::abs(cReal(Ops[0]))));
  case Op::Clamp:
    return One(mkReal(
        std::min(cReal(Ops[2]), std::max(cReal(Ops[1]), cReal(Ops[0])))));
  case Op::IntToReal:
    return One(mkReal(static_cast<double>(cInt(Ops[0]))));
  case Op::RealToInt:
    return One(CVal(static_cast<int64_t>(std::floor(cReal(Ops[0])))));
  case Op::Lt:
  case Op::Le:
  case Op::Gt:
  case Op::Ge:
  case Op::Eq:
  case Op::Ne: {
    double A, B;
    bool IsInt = std::holds_alternative<int64_t>(Ops[0]);
    if (std::holds_alternative<bool>(Ops[0])) {
      if (I.Opcode == Op::Eq)
        return One(CVal(cBool(Ops[0]) == cBool(Ops[1])));
      if (I.Opcode == Op::Ne)
        return One(CVal(cBool(Ops[0]) != cBool(Ops[1])));
      return std::nullopt;
    }
    if (std::holds_alternative<std::string>(Ops[0])) {
      const std::string &SA = std::get<std::string>(Ops[0]);
      const std::string &SB = std::get<std::string>(Ops[1]);
      if (I.Opcode == Op::Eq)
        return One(CVal(SA == SB));
      if (I.Opcode == Op::Ne)
        return One(CVal(SA != SB));
      return std::nullopt;
    }
    A = IsInt ? static_cast<double>(cInt(Ops[0])) : cReal(Ops[0]);
    B = IsInt ? static_cast<double>(cInt(Ops[1])) : cReal(Ops[1]);
    switch (I.Opcode) {
    case Op::Lt:
      return One(CVal(A < B));
    case Op::Le:
      return One(CVal(A <= B));
    case Op::Gt:
      return One(CVal(A > B));
    case Op::Ge:
      return One(CVal(A >= B));
    case Op::Eq:
      return One(CVal(A == B));
    default:
      return One(CVal(A != B));
    }
  }
  case Op::And:
    return One(CVal(cBool(Ops[0]) && cBool(Ops[1])));
  case Op::Or:
    return One(CVal(cBool(Ops[0]) || cBool(Ops[1])));
  case Op::Not:
    return One(CVal(!cBool(Ops[0])));
  case Op::Select:
    return One(Ops[cBool(Ops[0]) ? 1 : 2]);
  case Op::KernelWeight: {
    const auto &KW = std::get<ir::KernelWeightAttr>(I.A);
    const Kernel *K = kernels::byName(KW.Kernel);
    if (!K)
      return std::nullopt;
    Kernel DK = *K;
    for (int L = 0; L < KW.Deriv; ++L)
      DK = DK.derivative();
    return One(mkReal(DK.weightPoly(KW.Tap).eval(cReal(Ops[0]))));
  }
  case Op::PolyEval: {
    const auto &Coeffs = std::get<std::vector<double>>(I.A);
    return One(mkReal(Polynomial(Coeffs).eval(cReal(Ops[0]))));
  }
  default:
    return std::nullopt;
  }
}

//===----------------------------------------------------------------------===//
// Contraction
//===----------------------------------------------------------------------===//

class Contract {
public:
  explicit Contract(ir::Function &F) : F(F) {}

  bool run() {
    bool Any = false;
    for (int Iter = 0; Iter < 16; ++Iter) {
      Changed = false;
      Consts.clear();
      Replace.clear();
      foldRegion(F.Body, nullptr);
      bool DceChanged = dce();
      Any |= Changed || DceChanged;
      if (!Changed && !DceChanged)
        break;
    }
    return Any;
  }

private:
  ir::Function &F;
  std::map<ValueId, CVal> Consts;
  std::map<ValueId, ValueId> Replace;
  bool Changed = false;

  ValueId mapped(ValueId V) const {
    auto It = Replace.find(V);
    return It == Replace.end() ? V : It->second;
  }

  /// Replace instruction \p I with a constant definition of its result.
  void toConst(Instr &I, const CVal &V) {
    ValueId R = I.Results[0];
    I.Operands.clear();
    I.Regions.clear();
    if (std::holds_alternative<bool>(V)) {
      I.Opcode = Op::ConstBool;
      I.A = std::get<bool>(V);
    } else if (std::holds_alternative<int64_t>(V)) {
      I.Opcode = Op::ConstInt;
      I.A = std::get<int64_t>(V);
    } else if (std::holds_alternative<std::string>(V)) {
      I.Opcode = Op::ConstString;
      I.A = std::get<std::string>(V);
    } else if (cTensor(V).isScalar()) {
      I.Opcode = Op::ConstReal;
      I.A = cTensor(V).asScalar();
    } else {
      I.Opcode = Op::ConstTensor;
      I.A = cTensor(V);
    }
    Consts[R] = V;
  }

  /// Simple algebraic identities on non-constant operands. Returns the
  /// replacement value or NoValue.
  ValueId identity(const Instr &I) {
    auto IsK = [&](ValueId V, double K) {
      auto It = Consts.find(V);
      if (It == Consts.end())
        return false;
      if (std::holds_alternative<int64_t>(It->second))
        return static_cast<double>(cInt(It->second)) == K;
      if (std::holds_alternative<Tensor>(It->second) &&
          cTensor(It->second).isScalar())
        return cReal(It->second) == K;
      return false;
    };
    switch (I.Opcode) {
    case Op::Add:
      if (IsK(I.Operands[0], 0))
        return I.Operands[1];
      if (IsK(I.Operands[1], 0))
        return I.Operands[0];
      return ir::NoValue;
    case Op::Sub:
      if (IsK(I.Operands[1], 0))
        return I.Operands[0];
      return ir::NoValue;
    case Op::Mul:
      if (IsK(I.Operands[0], 1))
        return I.Operands[1];
      if (IsK(I.Operands[1], 1))
        return I.Operands[0];
      return ir::NoValue;
    case Op::Div:
      if (IsK(I.Operands[1], 1))
        return I.Operands[0];
      return ir::NoValue;
    case Op::Scale:
      if (IsK(I.Operands[0], 1))
        return I.Operands[1];
      return ir::NoValue;
    case Op::And: {
      auto It = Consts.find(I.Operands[0]);
      if (It != Consts.end())
        return cBool(It->second) ? I.Operands[1] : I.Operands[0];
      It = Consts.find(I.Operands[1]);
      if (It != Consts.end())
        return cBool(It->second) ? I.Operands[0] : I.Operands[1];
      return ir::NoValue;
    }
    case Op::Or: {
      auto It = Consts.find(I.Operands[0]);
      if (It != Consts.end())
        return cBool(It->second) ? I.Operands[0] : I.Operands[1];
      It = Consts.find(I.Operands[1]);
      if (It != Consts.end())
        return cBool(It->second) ? I.Operands[1] : I.Operands[0];
      return ir::NoValue;
    }
    case Op::Select: {
      auto It = Consts.find(I.Operands[0]);
      if (It != Consts.end())
        return cBool(It->second) ? I.Operands[1] : I.Operands[2];
      if (I.Operands[1] == I.Operands[2])
        return I.Operands[1];
      return ir::NoValue;
    }
    default:
      return ir::NoValue;
    }
  }

  /// Fold a region in place. \p ParentTerminatorSlot: when a constant-cond
  /// If splices a region that ends in Exit, the rest of the parent region is
  /// unreachable.
  void foldRegion(ir::Region &R, bool *ExitedEarly) {
    std::vector<Instr> Out;
    Out.reserve(R.Body.size());
    bool Dead = false;
    for (Instr &I : R.Body) {
      if (Dead) {
        Changed = true;
        break;
      }
      for (ValueId &V : I.Operands)
        V = mapped(V);

      // Record constants defined by constant instructions.
      switch (I.Opcode) {
      case Op::ConstBool:
        Consts[I.Results[0]] = std::get<bool>(I.A);
        Out.push_back(std::move(I));
        continue;
      case Op::ConstInt:
        Consts[I.Results[0]] = std::get<int64_t>(I.A);
        Out.push_back(std::move(I));
        continue;
      case Op::ConstReal:
        Consts[I.Results[0]] = mkReal(std::get<double>(I.A));
        Out.push_back(std::move(I));
        continue;
      case Op::ConstString:
        Consts[I.Results[0]] = std::get<std::string>(I.A);
        Out.push_back(std::move(I));
        continue;
      case Op::ConstTensor:
        Consts[I.Results[0]] = std::get<Tensor>(I.A);
        Out.push_back(std::move(I));
        continue;
      case Op::If: {
        auto CondIt = Consts.find(I.Operands[0]);
        if (CondIt != Consts.end()) {
          // Splice the taken branch inline.
          Changed = true;
          ir::Region Taken =
              std::move(I.Regions[cBool(CondIt->second) ? 0 : 1]);
          bool SubExited = false;
          foldRegion(Taken, &SubExited);
          for (Instr &Sub : Taken.Body) {
            if (Sub.Opcode == Op::Yield) {
              for (size_t K = 0; K < I.Results.size(); ++K)
                Replace[I.Results[K]] = Sub.Operands[K];
            } else if (Sub.Opcode == Op::Exit) {
              Out.push_back(std::move(Sub));
              Dead = true;
              break;
            } else {
              Out.push_back(std::move(Sub));
            }
          }
          continue;
        }
        bool SubExit = false;
        for (ir::Region &Sub : I.Regions)
          foldRegion(Sub, &SubExit);
        Out.push_back(std::move(I));
        continue;
      }
      default:
        break;
      }

      // Identity rewrites.
      if (ir::isPure(I.Opcode) && I.Results.size() == 1) {
        ValueId Repl = identity(I);
        if (Repl != ir::NoValue) {
          Replace[I.Results[0]] = Repl;
          Changed = true;
          continue;
        }
      }

      // Full constant folding.
      if (ir::isPure(I.Opcode) && !I.Results.empty()) {
        bool AllConst = !I.Operands.empty() || I.Opcode == Op::TensorCons;
        std::vector<CVal> Ops;
        for (ValueId V : I.Operands) {
          auto It = Consts.find(V);
          if (It == Consts.end()) {
            AllConst = false;
            break;
          }
          Ops.push_back(It->second);
        }
        if (AllConst && I.Results.size() == 1) {
          if (std::optional<std::vector<CVal>> Folded = foldOp(I, Ops, F)) {
            toConst(I, (*Folded)[0]);
            Changed = true;
            Out.push_back(std::move(I));
            continue;
          }
        }
      }
      Out.push_back(std::move(I));
    }
    if (ExitedEarly)
      *ExitedEarly = Dead;
    R.Body = std::move(Out);
  }

  //===--------------------------------------------------------------------===//
  // Dead code elimination
  //===--------------------------------------------------------------------===//

  static bool regionHasExit(const ir::Region &R) {
    for (const Instr &I : R.Body) {
      if (I.Opcode == Op::Exit)
        return true;
      for (const ir::Region &Sub : I.Regions)
        if (regionHasExit(Sub))
          return true;
    }
    return false;
  }

  bool dce() {
    std::set<ValueId> Live;
    // Fixpoint marking (uses in nested regions reference outer values).
    for (;;) {
      bool MarkChanged = false;
      markRegion(F.Body, Live, MarkChanged);
      if (!MarkChanged)
        break;
    }
    bool Removed = false;
    sweepRegion(F.Body, Live, Removed);
    return Removed;
  }

  void markRegion(const ir::Region &R, std::set<ValueId> &Live,
                  bool &MarkChanged) {
    for (auto It = R.Body.rbegin(); It != R.Body.rend(); ++It) {
      const Instr &I = *It;
      bool IsLive = isTerminator(I.Opcode);
      for (ValueId V : I.Results)
        IsLive |= Live.count(V) != 0;
      if (I.Opcode == Op::If)
        for (const ir::Region &Sub : I.Regions)
          IsLive |= regionHasExit(Sub);
      if (IsLive) {
        for (ValueId V : I.Operands)
          MarkChanged |= Live.insert(V).second;
        for (const ir::Region &Sub : I.Regions)
          markRegion(Sub, Live, MarkChanged);
      }
    }
  }

  void sweepRegion(ir::Region &R, const std::set<ValueId> &Live,
                   bool &Removed) {
    std::vector<Instr> Out;
    Out.reserve(R.Body.size());
    for (Instr &I : R.Body) {
      bool IsLive = isTerminator(I.Opcode);
      for (ValueId V : I.Results)
        IsLive |= Live.count(V) != 0;
      if (I.Opcode == Op::If)
        for (const ir::Region &Sub : I.Regions)
          IsLive |= regionHasExit(Sub);
      if (!IsLive) {
        Removed = true;
        continue;
      }
      for (ir::Region &Sub : I.Regions)
        sweepRegion(Sub, Live, Removed);
      Out.push_back(std::move(I));
    }
    R.Body = std::move(Out);
  }
};

//===----------------------------------------------------------------------===//
// Value numbering
//===----------------------------------------------------------------------===//

class ValueNumbering {
public:
  explicit ValueNumbering(ir::Function &F) : F(F) {}

  void run() {
    std::map<std::string, std::vector<ValueId>> Table;
    runRegion(F.Body, Table);
  }

private:
  ir::Function &F;
  std::map<ValueId, ValueId> Replace;

  ValueId mapped(ValueId V) const {
    auto It = Replace.find(V);
    return It == Replace.end() ? V : It->second;
  }

  static bool isCommutative(Op O) {
    switch (O) {
    case Op::Add:
    case Op::Mul:
    case Op::Min:
    case Op::Max:
    case Op::And:
    case Op::Or:
    case Op::Eq:
    case Op::Ne:
      return true;
    default:
      return false;
    }
  }

  void runRegion(ir::Region &R,
                 std::map<std::string, std::vector<ValueId>> &Table) {
    std::vector<Instr> Out;
    Out.reserve(R.Body.size());
    for (Instr &I : R.Body) {
      for (ValueId &V : I.Operands)
        V = mapped(V);
      if (I.Opcode == Op::If) {
        // Scoped table: each branch sees outer numbers but its additions
        // are discarded (they do not dominate the continuation).
        for (ir::Region &Sub : I.Regions) {
          std::map<std::string, std::vector<ValueId>> SubTable = Table;
          runRegion(Sub, SubTable);
        }
        Out.push_back(std::move(I));
        continue;
      }
      if (!ir::isPure(I.Opcode) || I.Results.empty()) {
        Out.push_back(std::move(I));
        continue;
      }
      // Tensor Add is elementwise and commutative too, so sorting operands
      // is safe for every commutative op.
      std::vector<ValueId> KeyOps = I.Operands;
      if (isCommutative(I.Opcode) && KeyOps.size() == 2 &&
          KeyOps[0] > KeyOps[1])
        std::swap(KeyOps[0], KeyOps[1]);
      std::string Key = strf(static_cast<int>(I.Opcode), "|",
                             ir::attrStr(I.A), "|");
      for (ValueId V : KeyOps)
        Key += strf(V, ",");
      auto It = Table.find(Key);
      if (It != Table.end() && It->second.size() == I.Results.size()) {
        for (size_t K = 0; K < I.Results.size(); ++K)
          Replace[I.Results[K]] = It->second[K];
        continue; // instruction eliminated
      }
      Table[Key] = I.Results;
      Out.push_back(std::move(I));
    }
    R.Body = std::move(Out);
  }
};

template <typename FnT> void forEachFunction(ir::Module &M, FnT &&Fn) {
  Fn(M.GlobalInit);
  Fn(M.StrandInit);
  Fn(M.Update);
  if (M.hasStabilize())
    Fn(M.Stabilize);
  Fn(M.CreateArgs);
  for (ir::Function &F : M.InputDefaults)
    Fn(F);
  for (size_t I = 0; I < M.IterLo.size(); ++I) {
    Fn(M.IterLo[I]);
    Fn(M.IterHi[I]);
  }
}

} // namespace

void contract(ir::Module &M) {
  forEachFunction(M, [](ir::Function &F) { Contract(F).run(); });
  assert(ir::verify(M).empty() && "contract broke the module");
}

void valueNumber(ir::Module &M) {
  forEachFunction(M, [](ir::Function &F) { ValueNumbering(F).run(); });
  assert(ir::verify(M).empty() && "value numbering broke the module");
}

} // namespace diderot::passes

//===--- passes/scalarize.cpp - MidIR -> LowIR -------------------------------===//
//
// The final lowering step of Section 5.3: tensor and sequence values are
// exploded into scalar SSA values, tensor operations are fully unrolled
// (the paper: "the process described in this section results in code that is
// easily vectorized" — we emit straight-line scalar code and let the host
// compiler vectorize it), kernel evaluations are expanded into Horner
// evaluation of the statically-selected polynomial piece, and
// eigendecompositions become multi-result runtime operations.
//
//===----------------------------------------------------------------------===//

#include <cassert>
#include <map>

#include "kernels/kernel.h"
#include "passes/passes.h"
#include "support/strings.h"

namespace diderot::passes {

namespace {

using ir::Instr;
using ir::Op;
using ir::ValueId;

/// Number of scalar slots a value of type \p T occupies at LowIR.
int slotCount(const Type &T) {
  switch (T.kind()) {
  case TypeKind::Tensor:
    return T.shape().numComponents();
  case TypeKind::Sequence:
    return T.seqLen() * slotCount(T.elem());
  default:
    return 1;
  }
}

/// The LowIR type of slot \p I of a value of type \p T.
Type slotType(const Type &T, int I) {
  switch (T.kind()) {
  case TypeKind::Tensor:
    return Type::real();
  case TypeKind::Sequence: {
    int Per = slotCount(T.elem());
    return slotType(T.elem(), I % Per);
  }
  default:
    return T;
  }
}

class Scalarize {
public:
  explicit Scalarize(ir::Function &F) : Old(F) {}

  Status run() {
    New.Name = Old.Name;
    // Parameters.
    for (int P = 0; P < Old.NumParams; ++P) {
      const Type &T = Old.typeOf(P);
      std::vector<ValueId> Slots;
      for (int I = 0; I < slotCount(T); ++I)
        Slots.push_back(New.newValue(slotType(T, I)));
      New.NumParams = New.numValues();
      Map[P] = std::move(Slots);
    }
    for (const Type &T : Old.ResultTypes)
      for (int I = 0; I < slotCount(T); ++I)
        New.ResultTypes.push_back(slotType(T, I));

    Status S = runRegion(Old.Body, New.Body);
    if (!S.isOk())
      return Status::error(strf("@", Old.Name, ": ", S.message()));
    Old = std::move(New);
    return Status::ok();
  }

private:
  ir::Function &Old;
  ir::Function New;
  std::map<ValueId, std::vector<ValueId>> Map;
  /// Source location of the Mid instruction currently being scalarized;
  /// stamped onto everything emit() produces (profiler attribution).
  SourceLoc CurLoc;

  const std::vector<ValueId> &comps(ValueId V) const { return Map.at(V); }
  ValueId one(ValueId V) const {
    const std::vector<ValueId> &C = comps(V);
    assert(C.size() == 1 && "expected a single-slot value");
    return C[0];
  }

  ValueId emit(ir::Region &R, Op O, std::vector<ValueId> Operands, Type Ty,
               ir::Attr A = std::monostate{}) {
    Instr I(O);
    I.Loc = CurLoc;
    I.Operands = std::move(Operands);
    I.A = std::move(A);
    ValueId V = New.newValue(std::move(Ty));
    I.Results.push_back(V);
    R.Body.push_back(std::move(I));
    return V;
  }

  ValueId constReal(ir::Region &R, double D) {
    return emit(R, Op::ConstReal, {}, Type::real(), D);
  }

  /// Sum a list of scalar values with an Add chain (at least one element).
  ValueId sum(ir::Region &R, const std::vector<ValueId> &Vals) {
    assert(!Vals.empty());
    ValueId Acc = Vals[0];
    for (size_t I = 1; I < Vals.size(); ++I)
      Acc = emit(R, Op::Add, {Acc, Vals[I]}, Type::real());
    return Acc;
  }

  Status runRegion(ir::Region &OldR, ir::Region &R) {
    for (Instr &I : OldR.Body) {
      Status S = lowerInstr(I, R);
      if (!S.isOk())
        return S;
    }
    return Status::ok();
  }

  Status lowerInstr(Instr &I, ir::Region &R);

  void bind(const Instr &I, std::vector<ValueId> Slots) {
    assert(I.Results.size() == 1);
    Map[I.Results[0]] = std::move(Slots);
  }
  void bind1(const Instr &I, ValueId V) {
    bind(I, std::vector<ValueId>{V});
  }
};

Status Scalarize::lowerInstr(Instr &I, ir::Region &R) {
  CurLoc = I.Loc;
  auto PassThrough = [&]() {
    Instr NI(I.Opcode);
    NI.A = I.A;
    NI.Loc = I.Loc;
    for (ValueId V : I.Operands)
      NI.Operands.push_back(one(V));
    std::vector<ValueId> Rs;
    for (ValueId OldV : I.Results) {
      ValueId NV = New.newValue(Old.typeOf(OldV));
      Rs.push_back(NV);
      Map[OldV] = {NV};
    }
    NI.Results = std::move(Rs);
    R.Body.push_back(std::move(NI));
  };

  const Type &ResTy =
      I.Results.empty() ? Type::error() : Old.typeOf(I.Results[0]);

  switch (I.Opcode) {
  //===--- constants -------------------------------------------------------===//
  case Op::ConstTensor: {
    const Tensor &T = std::get<Tensor>(I.A);
    std::vector<ValueId> Slots;
    for (int K = 0; K < T.numComponents(); ++K)
      Slots.push_back(constReal(R, T[K]));
    bind(I, std::move(Slots));
    return Status::ok();
  }
  case Op::ConstBool:
  case Op::ConstInt:
  case Op::ConstReal:
  case Op::ConstString:
    PassThrough();
    return Status::ok();

  case Op::GlobalGet: {
    int N = slotCount(ResTy);
    if (N == 1) {
      PassThrough();
      return Status::ok();
    }
    Instr NI(Op::GlobalGet);
    NI.A = I.A;
    std::vector<ValueId> Slots;
    for (int K = 0; K < N; ++K)
      Slots.push_back(New.newValue(slotType(ResTy, K)));
    NI.Results = Slots;
    R.Body.push_back(std::move(NI));
    bind(I, std::move(Slots));
    return Status::ok();
  }

  //===--- arithmetic ------------------------------------------------------===//
  case Op::Add:
  case Op::Sub: {
    const std::vector<ValueId> &A = comps(I.Operands[0]);
    const std::vector<ValueId> &B = comps(I.Operands[1]);
    std::vector<ValueId> Slots;
    for (size_t K = 0; K < A.size(); ++K)
      Slots.push_back(emit(R, I.Opcode, {A[K], B[K]}, slotType(ResTy, 0)));
    bind(I, std::move(Slots));
    return Status::ok();
  }
  case Op::Neg: {
    std::vector<ValueId> Slots;
    for (ValueId C : comps(I.Operands[0]))
      Slots.push_back(emit(R, Op::Neg, {C}, slotType(ResTy, 0)));
    bind(I, std::move(Slots));
    return Status::ok();
  }
  case Op::Scale: {
    ValueId S = one(I.Operands[0]);
    std::vector<ValueId> Slots;
    for (ValueId C : comps(I.Operands[1]))
      Slots.push_back(emit(R, Op::Mul, {S, C}, Type::real()));
    bind(I, std::move(Slots));
    return Status::ok();
  }
  case Op::DivScale: {
    ValueId S = one(I.Operands[1]);
    std::vector<ValueId> Slots;
    for (ValueId C : comps(I.Operands[0]))
      Slots.push_back(emit(R, Op::Div, {C, S}, Type::real()));
    bind(I, std::move(Slots));
    return Status::ok();
  }
  case Op::Mul:
  case Op::Div:
  case Op::Mod:
  case Op::Min:
  case Op::Max:
  case Op::Pow:
  case Op::Sqrt:
  case Op::Sin:
  case Op::Cos:
  case Op::Tan:
  case Op::Asin:
  case Op::Acos:
  case Op::Atan:
  case Op::Atan2:
  case Op::Exp:
  case Op::Log:
  case Op::Floor:
  case Op::Ceil:
  case Op::Round:
  case Op::Trunc:
  case Op::Abs:
  case Op::Clamp:
  case Op::IntToReal:
  case Op::RealToInt:
  case Op::Lt:
  case Op::Le:
  case Op::Gt:
  case Op::Ge:
  case Op::Eq:
  case Op::Ne:
  case Op::And:
  case Op::Or:
  case Op::Not:
  case Op::Select:
  case Op::InsideTest:
  case Op::VoxelLoad:
  case Op::LoadImage:
  case Op::PolyEval:
    PassThrough();
    return Status::ok();

  //===--- tensor operations ----------------------------------------------===//
  case Op::Dot: {
    const Type &LT = Old.typeOf(I.Operands[0]);
    const Type &RT = Old.typeOf(I.Operands[1]);
    int K = LT.shape().last();
    int Rows = LT.shape().numComponents() / K;
    int Cols = RT.shape().numComponents() / K;
    const std::vector<ValueId> &A = comps(I.Operands[0]);
    const std::vector<ValueId> &B = comps(I.Operands[1]);
    std::vector<ValueId> Slots;
    for (int Ri = 0; Ri < Rows; ++Ri)
      for (int Cj = 0; Cj < Cols; ++Cj) {
        std::vector<ValueId> Terms;
        for (int L = 0; L < K; ++L)
          Terms.push_back(emit(
              R, Op::Mul,
              {A[static_cast<size_t>(Ri * K + L)],
               B[static_cast<size_t>(L * Cols + Cj)]},
              Type::real()));
        Slots.push_back(sum(R, Terms));
      }
    bind(I, std::move(Slots));
    return Status::ok();
  }
  case Op::Cross: {
    const std::vector<ValueId> &A = comps(I.Operands[0]);
    const std::vector<ValueId> &B = comps(I.Operands[1]);
    auto Det2 = [&](int I0, int J0, int I1, int J1) {
      ValueId P = emit(R, Op::Mul, {A[static_cast<size_t>(I0)],
                                    B[static_cast<size_t>(J0)]},
                       Type::real());
      ValueId Q = emit(R, Op::Mul, {A[static_cast<size_t>(I1)],
                                    B[static_cast<size_t>(J1)]},
                       Type::real());
      return emit(R, Op::Sub, {P, Q}, Type::real());
    };
    if (A.size() == 2) {
      bind1(I, Det2(0, 1, 1, 0));
      return Status::ok();
    }
    bind(I, {Det2(1, 2, 2, 1), Det2(2, 0, 0, 2), Det2(0, 1, 1, 0)});
    return Status::ok();
  }
  case Op::Outer: {
    const std::vector<ValueId> &A = comps(I.Operands[0]);
    const std::vector<ValueId> &B = comps(I.Operands[1]);
    std::vector<ValueId> Slots;
    for (ValueId X : A)
      for (ValueId Y : B)
        Slots.push_back(emit(R, Op::Mul, {X, Y}, Type::real()));
    bind(I, std::move(Slots));
    return Status::ok();
  }
  case Op::Norm: {
    std::vector<ValueId> Sq;
    for (ValueId C : comps(I.Operands[0]))
      Sq.push_back(emit(R, Op::Mul, {C, C}, Type::real()));
    bind1(I, emit(R, Op::Sqrt, {sum(R, Sq)}, Type::real()));
    return Status::ok();
  }
  case Op::Normalize: {
    const std::vector<ValueId> &A = comps(I.Operands[0]);
    std::vector<ValueId> Sq;
    for (ValueId C : A)
      Sq.push_back(emit(R, Op::Mul, {C, C}, Type::real()));
    ValueId N = emit(R, Op::Sqrt, {sum(R, Sq)}, Type::real());
    // Guarded normalize: a zero vector stays zero (divide by 1 instead).
    ValueId Zero = constReal(R, 0.0);
    ValueId OneV = constReal(R, 1.0);
    ValueId IsPos = emit(R, Op::Gt, {N, Zero}, Type::boolean());
    ValueId Den = emit(R, Op::Select, {IsPos, N, OneV}, Type::real());
    std::vector<ValueId> Slots;
    for (ValueId C : A)
      Slots.push_back(emit(R, Op::Div, {C, Den}, Type::real()));
    bind(I, std::move(Slots));
    return Status::ok();
  }
  case Op::Trace: {
    const Type &T = Old.typeOf(I.Operands[0]);
    int N = T.shape()[0];
    const std::vector<ValueId> &A = comps(I.Operands[0]);
    std::vector<ValueId> Diag;
    for (int K = 0; K < N; ++K)
      Diag.push_back(A[static_cast<size_t>(K * N + K)]);
    bind1(I, sum(R, Diag));
    return Status::ok();
  }
  case Op::Det: {
    const Type &T = Old.typeOf(I.Operands[0]);
    int N = T.shape()[0];
    const std::vector<ValueId> &A = comps(I.Operands[0]);
    auto At = [&](int Ri, int Ci) { return A[static_cast<size_t>(Ri * N + Ci)]; };
    auto Mul2 = [&](ValueId X, ValueId Y) {
      return emit(R, Op::Mul, {X, Y}, Type::real());
    };
    auto Minor2 = [&](int R0, int C0, int R1, int C1) {
      return emit(R, Op::Sub,
                  {Mul2(At(R0, C0), At(R1, C1)), Mul2(At(R0, C1), At(R1, C0))},
                  Type::real());
    };
    if (N == 2) {
      bind1(I, Minor2(0, 0, 1, 1));
      return Status::ok();
    }
    if (N != 3)
      return Status::error("det supports 2x2 and 3x3 matrices");
    ValueId T0 = Mul2(At(0, 0), Minor2(1, 1, 2, 2));
    ValueId T1 = Mul2(At(0, 1), Minor2(1, 0, 2, 2));
    ValueId T2 = Mul2(At(0, 2), Minor2(1, 0, 2, 1));
    ValueId D = emit(R, Op::Sub, {T0, T1}, Type::real());
    bind1(I, emit(R, Op::Add, {D, T2}, Type::real()));
    return Status::ok();
  }
  case Op::Inverse: {
    const Type &T = Old.typeOf(I.Operands[0]);
    int N = T.shape()[0];
    const std::vector<ValueId> &A = comps(I.Operands[0]);
    auto At = [&](int Ri, int Ci) { return A[static_cast<size_t>(Ri * N + Ci)]; };
    auto Mul2 = [&](ValueId X, ValueId Y) {
      return emit(R, Op::Mul, {X, Y}, Type::real());
    };
    auto SubV = [&](ValueId X, ValueId Y) {
      return emit(R, Op::Sub, {X, Y}, Type::real());
    };
    if (N == 2) {
      ValueId D = SubV(Mul2(At(0, 0), At(1, 1)), Mul2(At(0, 1), At(1, 0)));
      ValueId NegB = emit(R, Op::Neg, {At(0, 1)}, Type::real());
      ValueId NegC = emit(R, Op::Neg, {At(1, 0)}, Type::real());
      bind(I, {emit(R, Op::Div, {At(1, 1), D}, Type::real()),
               emit(R, Op::Div, {NegB, D}, Type::real()),
               emit(R, Op::Div, {NegC, D}, Type::real()),
               emit(R, Op::Div, {At(0, 0), D}, Type::real())});
      return Status::ok();
    }
    if (N != 3)
      return Status::error("inv supports 2x2 and 3x3 matrices");
    // Adjugate / determinant.
    auto Cof = [&](int Ci, int Cj) {
      int I0 = (Ci + 1) % 3, I1 = (Ci + 2) % 3;
      int J0 = (Cj + 1) % 3, J1 = (Cj + 2) % 3;
      return SubV(Mul2(At(I0, J0), At(I1, J1)), Mul2(At(I0, J1), At(I1, J0)));
    };
    ValueId C00 = Cof(0, 0), C01 = Cof(0, 1), C02 = Cof(0, 2);
    ValueId D0 = Mul2(At(0, 0), C00);
    ValueId D1 = Mul2(At(0, 1), C01);
    ValueId D2 = Mul2(At(0, 2), C02);
    ValueId Det3 =
        emit(R, Op::Add, {emit(R, Op::Add, {D0, D1}, Type::real()), D2},
             Type::real());
    std::vector<ValueId> Slots;
    for (int Ri = 0; Ri < 3; ++Ri)
      for (int Cj = 0; Cj < 3; ++Cj)
        Slots.push_back(
            emit(R, Op::Div, {Cof(Cj, Ri), Det3}, Type::real()));
    bind(I, std::move(Slots));
    return Status::ok();
  }
  case Op::Transpose: {
    const Type &T = Old.typeOf(I.Operands[0]);
    int Rows = T.shape()[0], Cols = T.shape()[1];
    const std::vector<ValueId> &A = comps(I.Operands[0]);
    std::vector<ValueId> Slots(A.size());
    for (int Ri = 0; Ri < Rows; ++Ri)
      for (int Cj = 0; Cj < Cols; ++Cj)
        Slots[static_cast<size_t>(Cj * Rows + Ri)] =
            A[static_cast<size_t>(Ri * Cols + Cj)];
    bind(I, std::move(Slots));
    return Status::ok();
  }
  case Op::Modulate: {
    const std::vector<ValueId> &A = comps(I.Operands[0]);
    const std::vector<ValueId> &B = comps(I.Operands[1]);
    std::vector<ValueId> Slots;
    for (size_t K = 0; K < A.size(); ++K)
      Slots.push_back(emit(R, Op::Mul, {A[K], B[K]}, Type::real()));
    bind(I, std::move(Slots));
    return Status::ok();
  }
  case Op::Lerp: {
    const std::vector<ValueId> &A = comps(I.Operands[0]);
    const std::vector<ValueId> &B = comps(I.Operands[1]);
    ValueId T = one(I.Operands[2]);
    std::vector<ValueId> Slots;
    for (size_t K = 0; K < A.size(); ++K) {
      ValueId D = emit(R, Op::Sub, {B[K], A[K]}, Type::real());
      ValueId S = emit(R, Op::Mul, {T, D}, Type::real());
      Slots.push_back(emit(R, Op::Add, {A[K], S}, Type::real()));
    }
    bind(I, std::move(Slots));
    return Status::ok();
  }
  case Op::TensorCons:
  case Op::SeqCons: {
    std::vector<ValueId> Slots;
    for (ValueId V : I.Operands)
      for (ValueId C : comps(V))
        Slots.push_back(C);
    bind(I, std::move(Slots));
    return Status::ok();
  }
  case Op::TensorIndex: {
    const Type &T = Old.typeOf(I.Operands[0]);
    const std::vector<int> &Idx = std::get<std::vector<int>>(I.A);
    int Flat = 0;
    for (size_t K = 0; K < Idx.size(); ++K)
      Flat = Flat * T.shape()[static_cast<int>(K)] + Idx[K];
    int Rest = 1;
    for (int A2 = static_cast<int>(Idx.size()); A2 < T.shape().order(); ++A2)
      Rest *= T.shape()[A2];
    const std::vector<ValueId> &A = comps(I.Operands[0]);
    std::vector<ValueId> Slots;
    for (int K = 0; K < Rest; ++K)
      Slots.push_back(A[static_cast<size_t>(Flat * Rest + K)]);
    bind(I, std::move(Slots));
    return Status::ok();
  }
  case Op::SeqIndex: {
    const Type &T = Old.typeOf(I.Operands[0]);
    int Per = slotCount(T.elem());
    int N = T.seqLen();
    const std::vector<ValueId> &A = comps(I.Operands[0]);
    ValueId Idx = one(I.Operands[1]);
    std::vector<ValueId> Slots;
    for (int C = 0; C < Per; ++C) {
      ValueId Acc = A[static_cast<size_t>(C)];
      for (int K = 1; K < N; ++K) {
        ValueId KC = emit(R, Op::ConstInt, {}, Type::integer(),
                          static_cast<int64_t>(K));
        ValueId IsK = emit(R, Op::Eq, {Idx, KC}, Type::boolean());
        Acc = emit(R, Op::Select,
                   {IsK, A[static_cast<size_t>(K * Per + C)], Acc},
                   slotType(T.elem(), C));
      }
      Slots.push_back(Acc);
    }
    bind(I, std::move(Slots));
    return Status::ok();
  }
  case Op::Evals:
  case Op::Evecs: {
    const Type &T = Old.typeOf(I.Operands[0]);
    int N = T.shape()[0];
    Instr NI(I.Opcode == Op::Evals ? Op::EigenVals : Op::EigenVecs);
    NI.A = static_cast<int64_t>(N);
    for (ValueId C : comps(I.Operands[0]))
      NI.Operands.push_back(C);
    int NumRes = I.Opcode == Op::Evals ? N : N * N;
    std::vector<ValueId> Slots;
    for (int K = 0; K < NumRes; ++K)
      Slots.push_back(New.newValue(Type::real()));
    NI.Results = Slots;
    R.Body.push_back(std::move(NI));
    bind(I, std::move(Slots));
    return Status::ok();
  }

  //===--- image metadata --------------------------------------------------===//
  case Op::WorldToImage: {
    ValueId Img = one(I.Operands[0]);
    const std::vector<ValueId> &Pos = comps(I.Operands[1]);
    int D = static_cast<int>(Pos.size());
    std::vector<ValueId> Slots;
    for (int Ri = 0; Ri < D; ++Ri) {
      std::vector<ValueId> Terms;
      for (int C = 0; C < D; ++C) {
        ValueId Org = emit(R, Op::ImgMeta, {Img}, Type::real(),
                           ir::MetaAttr{ir::MetaAttr::Origin, C, 0});
        ValueId Rel =
            emit(R, Op::Sub, {Pos[static_cast<size_t>(C)], Org}, Type::real());
        ValueId W = emit(R, Op::ImgMeta, {Img}, Type::real(),
                         ir::MetaAttr{ir::MetaAttr::W2I, Ri, C});
        Terms.push_back(emit(R, Op::Mul, {W, Rel}, Type::real()));
      }
      Slots.push_back(sum(R, Terms));
    }
    bind(I, std::move(Slots));
    return Status::ok();
  }
  case Op::ImageGradXform: {
    ValueId Img = one(I.Operands[0]);
    int D = Old.typeOf(I.Results[0]).isReal()
                ? 1
                : Old.typeOf(I.Results[0]).shape()[0];
    std::vector<ValueId> Slots;
    for (int Ri = 0; Ri < D; ++Ri)
      for (int C = 0; C < D; ++C)
        Slots.push_back(emit(R, Op::ImgMeta, {Img}, Type::real(),
                             ir::MetaAttr{ir::MetaAttr::GradXf, Ri, C}));
    bind(I, std::move(Slots));
    return Status::ok();
  }
  case Op::KernelWeight: {
    const auto &KW = std::get<ir::KernelWeightAttr>(I.A);
    const Kernel *K = kernels::byName(KW.Kernel);
    if (!K)
      return Status::error(strf("unknown kernel '", KW.Kernel, "'"));
    Kernel DK = *K;
    for (int L = 0; L < KW.Deriv; ++L)
      DK = DK.derivative();
    const Polynomial &P = DK.weightPoly(KW.Tap);
    if (P.isZero()) {
      bind1(I, constReal(R, 0.0));
      return Status::ok();
    }
    bind1(I, emit(R, Op::PolyEval, {one(I.Operands[0])}, Type::real(),
                  P.coeffs()));
    return Status::ok();
  }

  //===--- control flow ----------------------------------------------------===//
  case Op::If: {
    Instr NI(Op::If);
    NI.Loc = I.Loc;
    NI.Operands.push_back(one(I.Operands[0]));
    NI.Regions.resize(2);
    Status S = runRegion(I.Regions[0], NI.Regions[0]);
    if (!S.isOk())
      return S;
    S = runRegion(I.Regions[1], NI.Regions[1]);
    if (!S.isOk())
      return S;
    std::vector<ValueId> AllSlots;
    for (ValueId OldV : I.Results) {
      const Type &T = Old.typeOf(OldV);
      std::vector<ValueId> Slots;
      for (int K = 0; K < slotCount(T); ++K) {
        ValueId NV = New.newValue(slotType(T, K));
        Slots.push_back(NV);
        AllSlots.push_back(NV);
      }
      Map[OldV] = std::move(Slots);
    }
    NI.Results = std::move(AllSlots);
    R.Body.push_back(std::move(NI));
    return Status::ok();
  }
  case Op::Yield:
  case Op::Exit: {
    Instr NI(I.Opcode);
    NI.A = I.A;
    for (ValueId V : I.Operands)
      for (ValueId C : comps(V))
        NI.Operands.push_back(C);
    R.Body.push_back(std::move(NI));
    return Status::ok();
  }

  default:
    return Status::error(
        strf("cannot scalarize op '", ir::opName(I.Opcode), "'"));
  }
}

} // namespace

Status lowerToLow(ir::Module &M) {
  assert(M.CurLevel == ir::Mid && "scalarization consumes MidIR");
  std::vector<ir::Function *> Fns = {&M.GlobalInit, &M.StrandInit, &M.Update,
                                     &M.CreateArgs};
  if (M.hasStabilize())
    Fns.push_back(&M.Stabilize);
  for (ir::Function &F : M.InputDefaults)
    Fns.push_back(&F);
  for (size_t I = 0; I < M.IterLo.size(); ++I) {
    Fns.push_back(&M.IterLo[I]);
    Fns.push_back(&M.IterHi[I]);
  }
  for (ir::Function *F : Fns) {
    Status S = Scalarize(*F).run();
    if (!S.isOk())
      return S;
  }
  M.CurLevel = ir::Low;
  std::string Err = ir::verify(M);
  if (!Err.empty())
    return Status::error(strf("after scalarization: ", Err));
  return Status::ok();
}

Status runPipeline(ir::Module &M, const PipelineOptions &Opts) {
  Status S = normalizeFields(M);
  if (!S.isOk())
    return S;
  if (Opts.EnableContract)
    contract(M);
  S = lowerToMid(M);
  if (!S.isOk())
    return S;
  if (Opts.EnableValueNumbering) {
    valueNumber(M);
    if (Opts.EnableContract)
      contract(M);
  } else if (Opts.EnableContract) {
    contract(M);
  }
  S = lowerToLow(M);
  if (!S.isOk())
    return S;
  if (Opts.EnableValueNumbering)
    valueNumber(M);
  if (Opts.EnableContract)
    contract(M);
  return Status::ok();
}

} // namespace diderot::passes

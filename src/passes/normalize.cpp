//===--- passes/normalize.cpp - field normalization (Figure 10) -------------===//
//
// Implements the rewrite system of the paper's Figure 10:
//
//   (f1 + f2)(x)   =>  f1(x) + f2(x)
//   (e * f)(x)     =>  e * f(x)
//   ∇(f1 + f2)     =>  ∇f1 + ∇f2
//   ∇(e * f)       =>  e * ∇f
//   ∇(V ⊛ ∂^i h)   =>  V ⊛ ∂^{i+1} h
//
// establishing the three invariants of Section 5.2: differentiation is
// pushed down to convolution kernels, probed fields are direct convolutions,
// and field arithmetic becomes tensor arithmetic.
//
// The implementation tracks a symbolic field expression for every
// field-typed SSA value and materializes convolutions at probe/inside sites.
//
//===----------------------------------------------------------------------===//

#include <cassert>
#include <map>
#include <memory>

#include "passes/passes.h"
#include "support/strings.h"

namespace diderot::passes {

namespace {

using ir::Instr;
using ir::Op;
using ir::ValueId;

/// A symbolic (normalized-on-demand) field value.
struct FieldExpr {
  enum Kind { Conv, Add, Sub, Neg, Scale, DivScale, Div, Curl } K = Conv;
  Type FieldTy; ///< field type of this node

  // Conv:
  ValueId Img = ir::NoValue;
  std::string Kernel;
  int Deriv = 0;

  // Children / scalar operand.
  std::shared_ptr<FieldExpr> A, B;
  ValueId Scalar = ir::NoValue;
};
using FE = std::shared_ptr<FieldExpr>;

/// Does the symbolic field contain a divergence/curl node? Differentiating
/// through those would need mixed second-order bookkeeping we do not model.
bool containsDivCurl(const FE &F) {
  if (F->K == FieldExpr::Div || F->K == FieldExpr::Curl)
    return true;
  if (F->A && containsDivCurl(F->A))
    return true;
  return F->B && containsDivCurl(F->B);
}

/// ∇ / ∇⊗ of a symbolic field: push differentiation to the leaves.
FE diffField(const FE &F) {
  auto Out = std::make_shared<FieldExpr>(*F);
  int D = F->FieldTy.dim();
  // 1-D derivatives stay scalar-shaped (no tensor[1]); the derivative level
  // is tracked in the convolution attribute instead.
  Shape NewShape =
      D == 1 ? F->FieldTy.shape() : F->FieldTy.shape().append(D);
  Out->FieldTy = Type::field(F->FieldTy.diff() - 1, D, std::move(NewShape));
  switch (F->K) {
  case FieldExpr::Conv:
    Out->Deriv = F->Deriv + 1;
    return Out;
  case FieldExpr::Add:
  case FieldExpr::Sub:
    Out->A = diffField(F->A);
    Out->B = diffField(F->B);
    return Out;
  case FieldExpr::Neg:
    Out->A = diffField(F->A);
    return Out;
  case FieldExpr::Scale:
  case FieldExpr::DivScale:
    Out->A = diffField(F->A);
    return Out;
  case FieldExpr::Div:
  case FieldExpr::Curl:
    assert(false && "diff of div/curl rejected before normalization");
    return Out;
  }
  return Out;
}

class Normalizer {
public:
  explicit Normalizer(ir::Function &F) : F(F) {}

  Status run() {
    Status S = runRegion(F.Body);
    return S;
  }

private:
  ir::Function &F;
  std::map<ValueId, FE> Fields;
  std::string Error;
  /// Source location of the instruction currently being rewritten; stamped
  /// onto everything emit() produces so rematerialized probes stay
  /// attributable to their DSL line (the profiler keys on it).
  SourceLoc CurLoc;

  ValueId emit(std::vector<Instr> &Out, Op O, std::vector<ValueId> Operands,
               Type Ty, ir::Attr A = std::monostate{}) {
    Instr I(O);
    I.Loc = CurLoc;
    I.Operands = std::move(Operands);
    I.A = std::move(A);
    ValueId R = F.newValue(std::move(Ty));
    I.Results.push_back(R);
    Out.push_back(std::move(I));
    return R;
  }

  /// Materialize the convolution for a Conv leaf and probe it.
  ValueId expandProbe(std::vector<Instr> &Out, const FE &Fe, ValueId Pos) {
    const Type &FT = Fe->FieldTy;
    Type ResTy = Type::tensor(FT.shape());
    switch (Fe->K) {
    case FieldExpr::Conv: {
      ValueId Cv = emit(Out, Op::Convolve, {Fe->Img}, FT,
                        ir::ConvolveAttr{Fe->Kernel, Fe->Deriv});
      return emit(Out, Op::Probe, {Cv, Pos}, ResTy);
    }
    case FieldExpr::Add: {
      ValueId L = expandProbe(Out, Fe->A, Pos);
      ValueId R = expandProbe(Out, Fe->B, Pos);
      return emit(Out, Op::Add, {L, R}, ResTy);
    }
    case FieldExpr::Sub: {
      ValueId L = expandProbe(Out, Fe->A, Pos);
      ValueId R = expandProbe(Out, Fe->B, Pos);
      return emit(Out, Op::Sub, {L, R}, ResTy);
    }
    case FieldExpr::Neg: {
      ValueId V = expandProbe(Out, Fe->A, Pos);
      return emit(Out, Op::Neg, {V}, ResTy);
    }
    case FieldExpr::Scale: {
      ValueId V = expandProbe(Out, Fe->A, Pos);
      if (ResTy.isReal())
        return emit(Out, Op::Mul, {Fe->Scalar, V}, ResTy);
      return emit(Out, Op::Scale, {Fe->Scalar, V}, ResTy);
    }
    case FieldExpr::DivScale: {
      ValueId V = expandProbe(Out, Fe->A, Pos);
      if (ResTy.isReal())
        return emit(Out, Op::Div, {V, Fe->Scalar}, ResTy);
      return emit(Out, Op::DivScale, {V, Fe->Scalar}, ResTy);
    }
    case FieldExpr::Div: {
      // (∇•f)(x) = trace((∇⊗f)(x)): probe the Jacobian, contract it.
      ValueId J = expandProbe(Out, diffField(Fe->A), Pos);
      return emit(Out, Op::Trace, {J}, Type::real());
    }
    case FieldExpr::Curl: {
      // (∇×f)(x) from the Jacobian's antisymmetric part; J(c, j) = d_j f_c.
      int D = Fe->A->FieldTy.dim();
      ValueId J = expandProbe(Out, diffField(Fe->A), Pos);
      auto At = [&](int C, int Jx) {
        return emit(Out, Op::TensorIndex, {J}, Type::real(),
                    std::vector<int>{C, Jx});
      };
      if (D == 2)
        return emit(Out, Op::Sub, {At(1, 0), At(0, 1)}, Type::real());
      ValueId CX = emit(Out, Op::Sub, {At(2, 1), At(1, 2)}, Type::real());
      ValueId CY = emit(Out, Op::Sub, {At(0, 2), At(2, 0)}, Type::real());
      ValueId CZ = emit(Out, Op::Sub, {At(1, 0), At(0, 1)}, Type::real());
      return emit(Out, Op::TensorCons, {CX, CY, CZ}, Type::vec(3));
    }
    }
    return ir::NoValue;
  }

  /// Collect the distinct (image, kernel) leaves under \p Fe.
  void collectLeaves(const FE &Fe, std::vector<const FieldExpr *> &Leaves) {
    if (Fe->K == FieldExpr::Conv) {
      for (const FieldExpr *L : Leaves)
        if (L->Img == Fe->Img && L->Kernel == Fe->Kernel)
          return;
      Leaves.push_back(Fe.get());
      return;
    }
    if (Fe->A)
      collectLeaves(Fe->A, Leaves);
    if (Fe->B)
      collectLeaves(Fe->B, Leaves);
  }

  /// inside(x, f1 + f2) requires the position to be inside every
  /// constituent convolution's domain.
  ValueId expandInside(std::vector<Instr> &Out, const FE &Fe, ValueId Pos) {
    std::vector<const FieldExpr *> Leaves;
    collectLeaves(Fe, Leaves);
    assert(!Leaves.empty());
    ValueId Acc = ir::NoValue;
    for (const FieldExpr *L : Leaves) {
      // The convolution value itself: deriv level does not change the
      // support, so probe the underived convolution's domain.
      Type ConvTy = L->FieldTy;
      ValueId Cv = emit(Out, Op::Convolve, {L->Img}, ConvTy,
                        ir::ConvolveAttr{L->Kernel, L->Deriv});
      ValueId In = emit(Out, Op::FieldInside, {Pos, Cv}, Type::boolean());
      Acc = Acc == ir::NoValue
                ? In
                : emit(Out, Op::And, {Acc, In}, Type::boolean());
    }
    return Acc;
  }

  Status runRegion(ir::Region &R) {
    std::vector<Instr> Out;
    Out.reserve(R.Body.size());
    for (Instr &I : R.Body) {
      CurLoc = I.Loc;
      switch (I.Opcode) {
      case Op::Convolve: {
        auto Fe = std::make_shared<FieldExpr>();
        Fe->K = FieldExpr::Conv;
        Fe->FieldTy = F.typeOf(I.Results[0]);
        Fe->Img = I.Operands[0];
        Fe->Kernel = std::get<ir::ConvolveAttr>(I.A).Kernel;
        Fe->Deriv = std::get<ir::ConvolveAttr>(I.A).Deriv;
        Fields[I.Results[0]] = std::move(Fe);
        continue; // dropped; rematerialized at probe sites
      }
      case Op::FieldAdd:
      case Op::FieldSub: {
        auto Fe = std::make_shared<FieldExpr>();
        Fe->K = I.Opcode == Op::FieldAdd ? FieldExpr::Add : FieldExpr::Sub;
        Fe->FieldTy = F.typeOf(I.Results[0]);
        Fe->A = Fields.at(I.Operands[0]);
        Fe->B = Fields.at(I.Operands[1]);
        Fields[I.Results[0]] = std::move(Fe);
        continue;
      }
      case Op::FieldNeg: {
        auto Fe = std::make_shared<FieldExpr>();
        Fe->K = FieldExpr::Neg;
        Fe->FieldTy = F.typeOf(I.Results[0]);
        Fe->A = Fields.at(I.Operands[0]);
        Fields[I.Results[0]] = std::move(Fe);
        continue;
      }
      case Op::FieldScale: {
        auto Fe = std::make_shared<FieldExpr>();
        Fe->K = FieldExpr::Scale;
        Fe->FieldTy = F.typeOf(I.Results[0]);
        Fe->Scalar = I.Operands[0];
        Fe->A = Fields.at(I.Operands[1]);
        Fields[I.Results[0]] = std::move(Fe);
        continue;
      }
      case Op::FieldDivScale: {
        auto Fe = std::make_shared<FieldExpr>();
        Fe->K = FieldExpr::DivScale;
        Fe->FieldTy = F.typeOf(I.Results[0]);
        Fe->A = Fields.at(I.Operands[0]);
        Fe->Scalar = I.Operands[1];
        Fields[I.Results[0]] = std::move(Fe);
        continue;
      }
      case Op::FieldDiff: {
        const FE &Arg = Fields.at(I.Operands[0]);
        if (containsDivCurl(Arg))
          return Status::error(
              "differentiating a divergence or curl field is not supported");
        Fields[I.Results[0]] = diffField(Arg);
        continue;
      }
      case Op::FieldDivergence:
      case Op::FieldCurl: {
        const FE &Arg = Fields.at(I.Operands[0]);
        if (containsDivCurl(Arg))
          return Status::error(
              "nested divergence/curl fields are not supported");
        auto Fe = std::make_shared<FieldExpr>();
        Fe->K = I.Opcode == Op::FieldDivergence ? FieldExpr::Div
                                                : FieldExpr::Curl;
        Fe->FieldTy = F.typeOf(I.Results[0]);
        Fe->A = Arg;
        Fields[I.Results[0]] = std::move(Fe);
        continue;
      }
      case Op::Probe: {
        auto It = Fields.find(I.Operands[0]);
        if (It == Fields.end())
          return Status::error("probe of an unknown field value");
        ValueId V = expandProbe(Out, It->second, I.Operands[1]);
        // Rebind the original result id: emit a no-op move by rewriting
        // later uses. Simplest: make the last emitted instruction define
        // the original result instead of the fresh value.
        rebindResult(Out, V, I.Results[0]);
        continue;
      }
      case Op::FieldInside: {
        auto It = Fields.find(I.Operands[1]);
        if (It == Fields.end())
          return Status::error("inside() of an unknown field value");
        ValueId V = expandInside(Out, It->second, I.Operands[0]);
        rebindResult(Out, V, I.Results[0]);
        continue;
      }
      case Op::If: {
        for (ir::Region &Sub : I.Regions) {
          Status S = runRegion(Sub);
          if (!S.isOk())
            return S;
        }
        Out.push_back(std::move(I));
        continue;
      }
      default:
        Out.push_back(std::move(I));
        continue;
      }
    }
    R.Body = std::move(Out);
    return Status::ok();
  }

  /// The expansion produced \p NewV as its final value; make it define
  /// \p OldV instead so existing uses see the normalized result.
  static void rebindResult(std::vector<Instr> &Out, ValueId NewV,
                           ValueId OldV) {
    assert(!Out.empty());
    Instr &Last = Out.back();
    assert(Last.Results.size() == 1 && Last.Results[0] == NewV);
    (void)NewV;
    Last.Results[0] = OldV;
  }
};

} // namespace

Status normalizeFields(ir::Module &M) {
  assert(M.CurLevel == ir::High && "normalization runs on HighIR");
  std::vector<ir::Function *> Fns = {&M.GlobalInit, &M.StrandInit, &M.Update,
                                     &M.CreateArgs};
  if (M.hasStabilize())
    Fns.push_back(&M.Stabilize);
  for (ir::Function &F : M.InputDefaults)
    Fns.push_back(&F);
  for (size_t I = 0; I < M.IterLo.size(); ++I) {
    Fns.push_back(&M.IterLo[I]);
    Fns.push_back(&M.IterHi[I]);
  }
  for (ir::Function *F : Fns) {
    Status S = Normalizer(*F).run();
    if (!S.isOk())
      return Status::error(strf("@", F->Name, ": ", S.message()));
  }
  std::string Err = ir::verify(M);
  if (!Err.empty())
    return Status::error(strf("after normalization: ", Err));
  return Status::ok();
}

} // namespace diderot::passes

//===--- support/subprocess.h - supervised child-process execution -----------===//
//
// Part of the Diderot-C++ reproduction (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A supervised replacement for std::system(): fork/exec a command, capture
/// its combined stdout+stderr, and enforce a wall-clock timeout by killing
/// the child's whole process group. The native engine puts the host C++
/// compiler on the serving hot path ("the output is then passed to the host
/// system's compiler", paper Section 5.1), which makes a hung or wedged
/// compiler a denial of service against the daemon's job workers — with
/// std::system() there was no way to get the worker back. runSupervised()
/// guarantees the call returns within the configured budget and that no
/// grandchild outlives the kill (the child is its own process-group leader,
/// and the expiry signal goes to the group).
///
/// Failure taxonomy (SubprocessResult):
///  * exited      — normal exit; ExitCode holds the status (0 = success).
///  * timed out   — the wall-clock budget expired; the group was SIGKILLed.
///  * signaled    — the child died on a signal it did not expect (OOM kill,
///    crash); TermSignal holds it. Signal deaths are the *transient* class:
///    with MaxRetries > 0 the command is re-run after an exponential
///    backoff. Nonzero exits (deterministic failures — a compile error) and
///    timeouts (retrying doubles the worst-case latency) are never retried.
///
/// Only async-signal-safe calls run between fork() and exec() — the daemon
/// forks from a multithreaded process, where anything else can deadlock on
/// a lock some other thread held at fork time.
///
//===----------------------------------------------------------------------===//

#ifndef DIDEROT_SUPPORT_SUBPROCESS_H
#define DIDEROT_SUPPORT_SUBPROCESS_H

#include <cstdint>
#include <string>
#include <vector>

#include "support/result.h"

namespace diderot::support {

/// What to run and within which budget.
struct SubprocessCommand {
  /// argv[0] is resolved via PATH (execvp). Must be non-empty.
  std::vector<std::string> Argv;
  /// Wall-clock budget in milliseconds; 0 = no timeout (wait forever).
  int64_t TimeoutMs = 0;
  /// Re-run the command up to this many times when it dies on a signal
  /// (the transient class — OOM kills, crashed compiler processes).
  int MaxRetries = 0;
  /// Backoff before the first retry; doubles per retry. 0 = no sleep.
  int64_t BackoffMs = 100;
};

/// Outcome of one supervised run (possibly after retries).
struct SubprocessResult {
  int ExitCode = -1;      ///< exit status when the child exited normally
  bool TimedOut = false;  ///< the wall-clock budget expired (group killed)
  int TermSignal = 0;     ///< nonzero when the child died on a signal
  std::string Output;     ///< combined stdout+stderr (possibly truncated)
  uint64_t WallNs = 0;    ///< wall time of the final attempt
  int Attempts = 1;       ///< 1 + retries actually performed

  bool succeeded() const {
    return !TimedOut && TermSignal == 0 && ExitCode == 0;
  }
};

/// Cap on captured child output: a compiler spraying gigabytes of errors
/// must not balloon daemon memory. Excess bytes are read and discarded so
/// the child never blocks on a full pipe.
constexpr size_t SubprocessMaxCapture = 1 << 20; // 1 MiB

/// Run \p C to completion under supervision. Errors (the Result) are
/// reserved for supervisor failures — empty argv, pipe/fork exhaustion;
/// everything the *child* does, including exec failure (exit 127), timeout,
/// and signal death, is reported inside SubprocessResult so the caller owns
/// the diagnostic.
Result<SubprocessResult> runSupervised(const SubprocessCommand &C);

/// Split a shell-ish flags string on ASCII whitespace ("-O3 -ffast-math"
/// -> {"-O3","-ffast-math"}). No quoting/escaping — CompileOptions flags
/// have always been whitespace-separated tokens; this is the documented
/// contract, not a shell.
std::vector<std::string> splitCommandWords(const std::string &S);

} // namespace diderot::support

#endif // DIDEROT_SUPPORT_SUBPROCESS_H

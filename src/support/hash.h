//===--- support/hash.h - 128-bit content hashing ---------------------------===//
//
// Part of the Diderot-C++ reproduction (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// FNV-1a in its 128-bit variant, used wherever the system needs a
/// content-addressed key: the native engine's compiled-object cache and the
/// serve daemon's program registry. The previous cache key was a
/// std::hash<std::string> size_t — a 64-bit value with no collision
/// guarantees and an unspecified algorithm; 128-bit FNV-1a makes accidental
/// collisions astronomically unlikely and the key stable across standard
/// libraries, which an on-disk cache shared between processes requires.
///
/// Not cryptographic: the cache directory is a local trust domain (same as
/// the generated .so files themselves), so collision *resistance against an
/// adversary* is explicitly a non-goal.
///
//===----------------------------------------------------------------------===//

#ifndef DIDEROT_SUPPORT_HASH_H
#define DIDEROT_SUPPORT_HASH_H

#include <cstddef>
#include <cstdint>
#include <string>

namespace diderot::support {

/// A 128-bit hash value, ordered and hashable so it can key maps directly.
struct Hash128 {
  uint64_t Hi = 0;
  uint64_t Lo = 0;

  friend bool operator==(const Hash128 &A, const Hash128 &B) {
    return A.Hi == B.Hi && A.Lo == B.Lo;
  }
  friend bool operator!=(const Hash128 &A, const Hash128 &B) {
    return !(A == B);
  }
  friend bool operator<(const Hash128 &A, const Hash128 &B) {
    return A.Hi != B.Hi ? A.Hi < B.Hi : A.Lo < B.Lo;
  }

  /// 32 lowercase hex digits, high word first — the form used in cache
  /// file names and over the daemon's HTTP API.
  std::string hex() const {
    static const char *Digits = "0123456789abcdef";
    std::string S(32, '0');
    uint64_t W = Hi;
    for (int I = 15; I >= 0; --I, W >>= 4)
      S[static_cast<size_t>(I)] = Digits[W & 0xF];
    W = Lo;
    for (int I = 31; I >= 16; --I, W >>= 4)
      S[static_cast<size_t>(I)] = Digits[W & 0xF];
    return S;
  }
};

/// Incremental FNV-1a/128 hasher: update() with each contribution, then
/// digest(). Field separators matter — callers hashing several fields
/// should interpose update("\0", 1)-style delimiters so ("ab","c") and
/// ("a","bc") do not collide.
class Fnv128 {
public:
  Fnv128() = default;

  void update(const void *Data, size_t Len) {
    const auto *P = static_cast<const unsigned char *>(Data);
    for (size_t I = 0; I < Len; ++I) {
      Lo ^= P[I];
      mulPrime();
    }
  }
  void update(const std::string &S) { update(S.data(), S.size()); }
  /// Hash the bytes of \p S plus a NUL terminator — the delimiter-included
  /// form for multi-field keys.
  void updateField(const std::string &S) {
    update(S.data(), S.size() + 1); // std::string guarantees data()[size()]==0
  }
  void updateField(int64_t V) {
    unsigned char B[8];
    uint64_t U = static_cast<uint64_t>(V);
    for (int I = 0; I < 8; ++I, U >>= 8)
      B[I] = static_cast<unsigned char>(U & 0xFF);
    update(B, 8);
  }

  Hash128 digest() const { return {Hi, Lo}; }

private:
  /// Multiply the 128-bit state by the FNV 128 prime 2^88 + 2^8 + 0x3b,
  /// i.e. (PrimeHi, PrimeLo) = (1 << 24, 0x13b), modulo 2^128.
  void mulPrime() {
    constexpr uint64_t PrimeHi = 1ULL << 24;
    constexpr uint64_t PrimeLo = 0x13BULL;
    unsigned __int128 LoLo = static_cast<unsigned __int128>(Lo) * PrimeLo;
    uint64_t NewHi =
        static_cast<uint64_t>(LoLo >> 64) + Lo * PrimeHi + Hi * PrimeLo;
    Lo = static_cast<uint64_t>(LoLo);
    Hi = NewHi;
  }

  // The FNV-128 offset basis.
  uint64_t Hi = 0x6C62272E07BB0142ULL;
  uint64_t Lo = 0x62B821756295C58DULL;
};

/// One-shot convenience over a single buffer.
inline Hash128 fnv1a128(const void *Data, size_t Len) {
  Fnv128 H;
  H.update(Data, Len);
  return H.digest();
}
inline Hash128 fnv1a128(const std::string &S) {
  return fnv1a128(S.data(), S.size());
}

} // namespace diderot::support

#endif // DIDEROT_SUPPORT_HASH_H

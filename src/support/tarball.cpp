//===--- support/tarball.cpp - minimal ustar archive pack/unpack -------------===//

#include "support/tarball.h"

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "support/atomic_file.h"
#include "support/strings.h"

namespace diderot::support {

namespace fs = std::filesystem;

namespace {

constexpr size_t BlockSize = 512;

/// Write \p V into \p Field as a NUL-terminated octal string of \p Width
/// characters (the ustar numeric encoding).
void putOctal(char *Field, size_t Width, uint64_t V) {
  // Width-1 digits, then NUL.
  for (size_t I = Width - 1; I-- > 0;) {
    Field[I] = static_cast<char>('0' + (V & 7));
    V >>= 3;
  }
  Field[Width - 1] = '\0';
}

uint64_t parseOctal(const char *Field, size_t Width) {
  uint64_t V = 0;
  for (size_t I = 0; I < Width && Field[I]; ++I) {
    if (Field[I] < '0' || Field[I] > '7')
      continue; // leading spaces in foreign archives
    V = (V << 3) | static_cast<uint64_t>(Field[I] - '0');
  }
  return V;
}

bool badName(const std::string &Name) {
  return Name.empty() || Name.size() > 99 ||
         Name.find("..") != std::string::npos || Name.front() == '/';
}

} // namespace

Result<std::string> tarSerialize(const TarEntries &Entries) {
  using RS = Result<std::string>;
  std::string Out;
  for (const auto &[Name, Bytes] : Entries) {
    if (badName(Name))
      return RS::error(strf("tar entry name unsupported: '", Name, "'"));
    char H[BlockSize] = {};
    std::memcpy(H, Name.data(), Name.size());      // name
    putOctal(H + 100, 8, 0644);                    // mode
    putOctal(H + 108, 8, 0);                       // uid
    putOctal(H + 116, 8, 0);                       // gid
    putOctal(H + 124, 12, Bytes.size());           // size
    putOctal(H + 136, 12, 0);                      // mtime (deterministic)
    std::memset(H + 148, ' ', 8);                  // checksum placeholder
    H[156] = '0';                                  // typeflag: regular file
    std::memcpy(H + 257, "ustar", 6);              // magic
    H[263] = '0';                                  // version "00"
    H[264] = '0';
    uint64_t Sum = 0;
    for (size_t I = 0; I < BlockSize; ++I)
      Sum += static_cast<unsigned char>(H[I]);
    putOctal(H + 148, 7, Sum);
    H[155] = ' ';
    Out.append(H, BlockSize);
    Out.append(Bytes);
    if (size_t Pad = Bytes.size() % BlockSize)
      Out.append(BlockSize - Pad, '\0');
  }
  Out.append(2 * BlockSize, '\0'); // end-of-archive marker
  return Out;
}

Result<TarEntries> tarParse(const std::string &Bytes) {
  using RT = Result<TarEntries>;
  TarEntries Entries;
  size_t Pos = 0;
  while (Pos + BlockSize <= Bytes.size()) {
    const char *H = Bytes.data() + Pos;
    if (H[0] == '\0') // zero block: end of archive
      break;
    char NameBuf[101] = {};
    std::memcpy(NameBuf, H, 100);
    std::string Name = NameBuf;
    uint64_t Size = parseOctal(H + 124, 12);
    char Type = H[156];
    Pos += BlockSize;
    if (Pos + Size > Bytes.size())
      return RT::error(strf("truncated tar entry '", Name, "'"));
    if (Type == '0' || Type == '\0')
      Entries.emplace_back(Name, Bytes.substr(Pos, Size));
    Pos += Size;
    if (size_t Pad = Size % BlockSize)
      Pos += BlockSize - Pad;
  }
  return Entries;
}

Result<std::string> tarDirectory(const std::string &Dir) {
  using RS = Result<std::string>;
  TarEntries Entries;
  std::error_code EC;
  // Sorted for deterministic archives (directory_iterator order is not).
  std::vector<fs::path> Paths;
  for (fs::directory_iterator It(Dir, EC), End; !EC && It != End;
       It.increment(EC))
    if (It->is_regular_file(EC))
      Paths.push_back(It->path());
  std::sort(Paths.begin(), Paths.end());
  for (const fs::path &P : Paths) {
    std::ifstream In(P, std::ios::binary);
    if (!In)
      return RS::error(strf("cannot read ", P.string()));
    std::string Bytes((std::istreambuf_iterator<char>(In)),
                      std::istreambuf_iterator<char>());
    Entries.emplace_back(P.filename().string(), std::move(Bytes));
  }
  return tarSerialize(Entries);
}

Status tarExtract(const std::string &Bytes, const std::string &Dir) {
  Result<TarEntries> Entries = tarParse(Bytes);
  if (!Entries.isOk())
    return Status::error(Entries.message());
  std::error_code EC;
  fs::create_directories(Dir, EC);
  if (EC)
    return Status::error(strf("cannot create ", Dir));
  for (const auto &[Name, Data] : *Entries) {
    if (badName(Name) || Name.find('/') != std::string::npos)
      return Status::error(strf("unsafe tar entry name '", Name, "'"));
    Status S = writeFileAtomic((fs::path(Dir) / Name).string(), Data);
    if (!S.isOk())
      return S;
  }
  return Status::ok();
}

} // namespace diderot::support

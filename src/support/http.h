//===--- support/http.h - minimal embedded HTTP server -----------------------===//
//
// Part of the Diderot-C++ reproduction (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deliberately small HTTP/1.x server shared by the observe layer's
/// `GET /metrics` endpoint and the serve daemon's job API. Factored out of
/// observe/metrics_http.cpp once the daemon needed routing, request bodies,
/// and headers; all socket code in the tree lives in support/http.cpp.
///
/// Scope and hardening (in order of importance):
///  * loopback only — the listener binds 127.0.0.1, never a public address;
///  * bounded everything — request line, header block, and body sizes are
///    limited (ParseLimits) and over-limit requests get 413, not memory;
///  * slow clients cannot wedge the server — reads carry an SO_RCVTIMEO
///    timeout and a timed-out connection gets 408 and a close;
///  * strict parsing — CRLF-less request lines, bare-LF line endings,
///    control bytes, conflicting Content-Length headers, and
///    Transfer-Encoding are all rejected with 400 (parseRequest is a pure
///    function over the byte stream so the malformed-request corpus in
///    tests/http_test.cpp can exercise it without sockets);
///  * no keep-alive, no TLS, no chunked bodies — one request per
///    connection, `Connection: close` on every response.
///
//===----------------------------------------------------------------------===//

#ifndef DIDEROT_SUPPORT_HTTP_H
#define DIDEROT_SUPPORT_HTTP_H

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "support/result.h"

namespace diderot::http {

/// Caps applied while parsing one request off the wire. The defaults fit
/// the daemon's largest legitimate request (a Diderot program source in a
/// POST body) with room to spare.
struct ParseLimits {
  size_t MaxRequestLine = 8 * 1024;
  size_t MaxHeaderBytes = 64 * 1024;
  size_t MaxBodyBytes = 8 * 1024 * 1024;
};

/// One parsed request. Header names are lower-cased during parsing;
/// repeated headers are preserved in order (the daemon uses repetition for
/// multi-valued inputs).
struct Request {
  std::string Method;  ///< e.g. "GET" (upper-case by grammar)
  std::string Path;    ///< target path without the query string
  std::string Query;   ///< raw query string ("" when absent)
  std::string Version; ///< "HTTP/1.0" or "HTTP/1.1"
  std::vector<std::pair<std::string, std::string>> Headers;
  std::string Body;

  /// First value of header \p Name (lower-case), or "" when absent.
  std::string header(const std::string &Name) const;
  /// Every value of header \p Name, in wire order.
  std::vector<std::string> headerValues(const std::string &Name) const;
  /// Percent-decoded value of query parameter \p Key, or "" when absent.
  std::string queryParam(const std::string &Key) const;
};

enum class Parse {
  Ok,       ///< a complete, well-formed request was parsed
  NeedMore, ///< the buffer is a valid prefix; read more bytes
  Bad,      ///< malformed — respond 400 and close
  TooLarge, ///< exceeds a ParseLimits cap — respond 413 and close
};

/// Parse the connection's byte stream so far (\p Buf is a prefix, not a
/// packet). On Ok, \p R is fully populated; on Bad/TooLarge \p Err says
/// why. Pure function — no I/O, no state.
Parse parseRequest(const std::string &Buf, Request &R, std::string &Err,
                   const ParseLimits &L = {});

/// What a handler returns; serialized with Content-Length and
/// `Connection: close`.
struct Response {
  int Code = 200;
  std::string ContentType = "text/plain; charset=utf-8";
  std::string Body;
  /// Extra response headers (name, value) appended verbatim.
  std::vector<std::pair<std::string, std::string>> ExtraHeaders;
};

/// Canonical reason phrase for \p Code ("OK", "Not Found", ...).
const char *statusText(int Code);

/// Render \p R as a complete HTTP/1.1 response byte string.
std::string serializeResponse(const Response &R);

/// The server: one accept thread feeding a small pool of connection
/// handler threads. The handler callback runs on a pool thread and must be
/// thread-safe; it should be fast (enqueue work, snapshot state) — a slow
/// handler occupies one pool slot.
class Server {
public:
  using Handler = std::function<Response(const Request &)>;

  struct Options {
    ParseLimits Limits;
    int RecvTimeoutMs = 5000; ///< SO_RCVTIMEO per connection
    int HandlerThreads = 4;
    int Backlog = 64;
  };

  Server();
  ~Server();
  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  /// Bind 127.0.0.1:\p Port (0 picks an ephemeral port, readable via
  /// port()) and start serving \p H.
  Status start(int Port, Handler H, Options O);
  Status start(int Port, Handler H) {
    return start(Port, std::move(H), Options());
  }
  /// The bound port (valid after a successful start).
  int port() const;
  /// Stop accepting, drain in-flight connections, join all threads
  /// (idempotent; the destructor calls it).
  void stop();

private:
  struct Impl;
  std::unique_ptr<Impl> I;
};

} // namespace diderot::http

#endif // DIDEROT_SUPPORT_HTTP_H

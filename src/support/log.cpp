//===--- support/log.cpp - structured, leveled, rate-limited logging --------===//
//
// Part of the Diderot-C++ reproduction (PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "support/log.h"

#include <chrono>
#include <cinttypes>
#include <cstring>
#include <ctime>

#include "support/strings.h"

namespace diderot::logging {

namespace {

/// Wall-clock now as (unix seconds, milliseconds within the second).
std::pair<int64_t, int> wallNow() {
  auto Now = std::chrono::system_clock::now().time_since_epoch();
  int64_t Ms = std::chrono::duration_cast<std::chrono::milliseconds>(Now)
                   .count();
  return {Ms / 1000, static_cast<int>(Ms % 1000)};
}

/// RFC 3339 UTC timestamp with millisecond precision.
std::string isoTimestamp(int64_t Sec, int Ms) {
  std::tm Tm{};
  time_t T = static_cast<time_t>(Sec);
  gmtime_r(&T, &Tm);
  char Buf[40];
  std::snprintf(Buf, sizeof(Buf), "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                Tm.tm_year + 1900, Tm.tm_mon + 1, Tm.tm_mday, Tm.tm_hour,
                Tm.tm_min, Tm.tm_sec, Ms);
  return Buf;
}

} // namespace

const char *levelName(Level L) {
  switch (L) {
  case Level::Debug:
    return "debug";
  case Level::Info:
    return "info";
  case Level::Warn:
    return "warn";
  case Level::Error:
    return "error";
  }
  return "?";
}

bool parseLevel(const std::string &S, Level &Out) {
  if (S == "debug")
    Out = Level::Debug;
  else if (S == "info")
    Out = Level::Info;
  else if (S == "warn")
    Out = Level::Warn;
  else if (S == "error")
    Out = Level::Error;
  else
    return false;
  return true;
}

Field numField(std::string Key, int64_t V) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%" PRId64, V);
  return {std::move(Key), Buf, false};
}

Field numField(std::string Key, uint64_t V) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%" PRIu64, V);
  return {std::move(Key), Buf, false};
}

Field numField(std::string Key, double V) {
  char Buf[40];
  std::snprintf(Buf, sizeof(Buf), "%.6g", V);
  return {std::move(Key), Buf, false};
}

void Logger::configure(const Options &O) {
  std::lock_guard<std::mutex> G(Mu);
  MinLevel.store(static_cast<int>(O.MinLevel), std::memory_order_relaxed);
  Json.store(O.Json, std::memory_order_relaxed);
  Out = O.Out;
}

void Logger::log(Level L, const std::string &Msg,
                 const std::vector<Field> &Fields) {
  if (!enabled(L))
    return;
  emit(L, Msg, Fields, 0);
}

bool Logger::logEvery(const std::string &Key, uint32_t MaxPerSec, Level L,
                      const std::string &Msg,
                      const std::vector<Field> &Fields) {
  if (!enabled(L))
    return false;
  uint64_t SuppressedRun = 0;
  {
    std::lock_guard<std::mutex> G(Mu);
    Bucket &B = Buckets[Key];
    int64_t Sec = wallNow().first;
    if (B.WindowSec != Sec) {
      B.WindowSec = Sec;
      B.InWindow = 0;
    }
    if (B.InWindow >= MaxPerSec) {
      ++B.SuppressedRun;
      Suppressed.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    ++B.InWindow;
    SuppressedRun = B.SuppressedRun;
    B.SuppressedRun = 0;
  }
  emit(L, Msg, Fields, SuppressedRun);
  return true;
}

void Logger::emit(Level L, const std::string &Msg,
                  const std::vector<Field> &Fields, uint64_t SuppressedRun) {
  auto [Sec, Ms] = wallNow();
  std::string Line;
  Line.reserve(96 + Msg.size());
  if (Json.load(std::memory_order_relaxed)) {
    Line += "{\"ts\":\"";
    Line += isoTimestamp(Sec, Ms);
    Line += "\",\"level\":\"";
    Line += levelName(L);
    Line += "\",\"msg\":\"";
    Line += jsonEscape(Msg);
    Line += '"';
    for (const Field &F : Fields) {
      Line += ",\"";
      Line += jsonEscape(F.Key);
      Line += "\":";
      if (F.Quoted) {
        Line += '"';
        Line += jsonEscape(F.Val);
        Line += '"';
      } else {
        Line += F.Val;
      }
    }
    if (SuppressedRun)
      Line += strf(",\"suppressed\":", SuppressedRun);
    Line += "}\n";
  } else {
    Line += isoTimestamp(Sec, Ms);
    Line += ' ';
    const char *Name = levelName(L);
    size_t NameLen = std::strlen(Name);
    Line += Name;
    for (size_t I = NameLen; I < 5; ++I)
      Line += ' '; // pad the level column ("info" vs "error")
    Line += ' ';
    Line += Msg;
    for (const Field &F : Fields) {
      Line += ' ';
      Line += F.Key;
      Line += '=';
      // Quote values with spaces so text lines stay splittable.
      if (F.Quoted && F.Val.find(' ') != std::string::npos) {
        Line += '"';
        Line += F.Val;
        Line += '"';
      } else {
        Line += F.Val;
      }
    }
    if (SuppressedRun)
      Line += strf(" suppressed=", SuppressedRun);
    Line += '\n';
  }
  std::lock_guard<std::mutex> G(Mu);
  std::FILE *Dst = Out ? Out : stderr;
  std::fwrite(Line.data(), 1, Line.size(), Dst);
  std::fflush(Dst);
  Emitted.fetch_add(1, std::memory_order_relaxed);
}

Logger &Logger::global() {
  static Logger L;
  return L;
}

void debug(const std::string &Msg, const std::vector<Field> &Fields) {
  Logger::global().log(Level::Debug, Msg, Fields);
}
void info(const std::string &Msg, const std::vector<Field> &Fields) {
  Logger::global().log(Level::Info, Msg, Fields);
}
void warn(const std::string &Msg, const std::vector<Field> &Fields) {
  Logger::global().log(Level::Warn, Msg, Fields);
}
void error(const std::string &Msg, const std::vector<Field> &Fields) {
  Logger::global().log(Level::Error, Msg, Fields);
}

} // namespace diderot::logging

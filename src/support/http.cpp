//===--- support/http.cpp - minimal embedded HTTP server ---------------------===//
//
// Part of the Diderot-C++ reproduction (PLDI 2012).
//
// The only file in the tree with socket code. See http.h for the scope and
// hardening contract; the parser half is pure and corpus-tested in
// tests/http_test.cpp.
//
//===----------------------------------------------------------------------===//

#include "support/http.h"

#include <cctype>
#include <condition_variable>
#include <cstdint>
#include <cstring>
#include <deque>
#include <mutex>
#include <thread>

#if defined(__unix__) || defined(__APPLE__)
#define DIDEROT_HAVE_SOCKETS 1
#include <arpa/inet.h>
#include <cerrno>
#include <csignal>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>
#ifndef MSG_NOSIGNAL
#define MSG_NOSIGNAL 0 // not defined on macOS; SIGPIPE is rare enough there
#endif
#endif

namespace diderot::http {

//===----------------------------------------------------------------------===//
// Request accessors
//===----------------------------------------------------------------------===//

std::string Request::header(const std::string &Name) const {
  for (const auto &[K, V] : Headers)
    if (K == Name)
      return V;
  return "";
}

std::vector<std::string> Request::headerValues(const std::string &Name) const {
  std::vector<std::string> Out;
  for (const auto &[K, V] : Headers)
    if (K == Name)
      Out.push_back(V);
  return Out;
}

namespace {

/// Decode %XX escapes and '+' (form encoding) in a query component.
std::string urlDecode(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (size_t I = 0; I < S.size(); ++I) {
    if (S[I] == '+') {
      Out += ' ';
    } else if (S[I] == '%' && I + 2 < S.size() && std::isxdigit(S[I + 1]) &&
               std::isxdigit(S[I + 2])) {
      auto Hex = [](char C) {
        return C <= '9' ? C - '0' : (C | 0x20) - 'a' + 10;
      };
      Out += static_cast<char>(Hex(S[I + 1]) * 16 + Hex(S[I + 2]));
      I += 2;
    } else {
      Out += S[I];
    }
  }
  return Out;
}

} // namespace

std::string Request::queryParam(const std::string &Key) const {
  size_t P = 0;
  while (P < Query.size()) {
    size_t Amp = Query.find('&', P);
    if (Amp == std::string::npos)
      Amp = Query.size();
    std::string Pair = Query.substr(P, Amp - P);
    size_t Eq = Pair.find('=');
    std::string K = Eq == std::string::npos ? Pair : Pair.substr(0, Eq);
    if (urlDecode(K) == Key)
      return Eq == std::string::npos ? "" : urlDecode(Pair.substr(Eq + 1));
    P = Amp + 1;
  }
  return "";
}

//===----------------------------------------------------------------------===//
// Parsing (pure)
//===----------------------------------------------------------------------===//

namespace {

bool isTokenByte(char C) {
  // RFC 7230 token characters, the subset we care about for header names.
  return std::isalnum(static_cast<unsigned char>(C)) ||
         std::strchr("!#$%&'*+-.^_`|~", C) != nullptr;
}

std::string lower(std::string S) {
  for (char &C : S)
    C = static_cast<char>(std::tolower(static_cast<unsigned char>(C)));
  return S;
}

std::string trimOws(const std::string &S) {
  size_t B = 0, E = S.size();
  while (B < E && (S[B] == ' ' || S[B] == '\t'))
    ++B;
  while (E > B && (S[E - 1] == ' ' || S[E - 1] == '\t'))
    --E;
  return S.substr(B, E - B);
}

} // namespace

Parse parseRequest(const std::string &Buf, Request &R, std::string &Err,
                   const ParseLimits &L) {
  R = Request();
  // Locate the end of the header block first so body bytes (which may
  // legitimately contain bare LF or control bytes) are never line-scanned.
  size_t HdrEnd = Buf.find("\r\n\r\n");
  size_t HeadLen = HdrEnd == std::string::npos ? Buf.size() : HdrEnd + 4;

  // Reject bare-LF line endings anywhere in the head: a request line or
  // header terminated by '\n' alone is malformed, not "needs more bytes".
  for (size_t I = 0; I < HeadLen; ++I)
    if (Buf[I] == '\n' && (I == 0 || Buf[I - 1] != '\r')) {
      Err = "bare LF line ending in request head";
      return Parse::Bad;
    }

  // -- Request line --------------------------------------------------------
  size_t LineEnd = Buf.find("\r\n");
  if (LineEnd == std::string::npos) {
    if (Buf.size() > L.MaxRequestLine) {
      Err = "request line exceeds limit without CRLF";
      return Parse::TooLarge;
    }
    return Parse::NeedMore;
  }
  if (LineEnd > L.MaxRequestLine) {
    Err = "request line too long";
    return Parse::TooLarge;
  }
  std::string Line = Buf.substr(0, LineEnd);
  for (char C : Line)
    if (static_cast<unsigned char>(C) < 0x20 || C == 0x7F) {
      Err = "control byte in request line";
      return Parse::Bad;
    }
  size_t Sp1 = Line.find(' ');
  size_t Sp2 = Sp1 == std::string::npos ? std::string::npos
                                        : Line.find(' ', Sp1 + 1);
  if (Sp1 == std::string::npos || Sp2 == std::string::npos ||
      Line.find(' ', Sp2 + 1) != std::string::npos) {
    Err = "request line is not METHOD SP TARGET SP VERSION";
    return Parse::Bad;
  }
  R.Method = Line.substr(0, Sp1);
  std::string Target = Line.substr(Sp1 + 1, Sp2 - Sp1 - 1);
  R.Version = Line.substr(Sp2 + 1);
  if (R.Method.empty() || R.Method.size() > 16) {
    Err = "bad method";
    return Parse::Bad;
  }
  for (char C : R.Method)
    if (C < 'A' || C > 'Z') {
      Err = "method is not upper-case alphabetic";
      return Parse::Bad;
    }
  if (Target.empty() || Target[0] != '/') {
    Err = "target must be origin-form (start with '/')";
    return Parse::Bad;
  }
  if (R.Version.rfind("HTTP/1.", 0) != 0 || R.Version.size() != 8 ||
      !std::isdigit(static_cast<unsigned char>(R.Version[7]))) {
    Err = "unsupported HTTP version";
    return Parse::Bad;
  }
  size_t Q = Target.find('?');
  R.Path = Target.substr(0, Q);
  R.Query = Q == std::string::npos ? "" : Target.substr(Q + 1);

  // -- Headers -------------------------------------------------------------
  if (HdrEnd == std::string::npos) {
    if (Buf.size() - LineEnd > L.MaxHeaderBytes) {
      Err = "header block exceeds limit";
      return Parse::TooLarge;
    }
    return Parse::NeedMore;
  }
  if (HdrEnd - LineEnd > L.MaxHeaderBytes) {
    Err = "header block too large";
    return Parse::TooLarge;
  }
  size_t Pos = LineEnd + 2;
  uint64_t ContentLength = 0;
  bool HaveLength = false;
  while (Pos < HdrEnd) {
    size_t E = Buf.find("\r\n", Pos);
    // E <= HdrEnd always holds: HdrEnd itself is a "\r\n" occurrence.
    std::string H = Buf.substr(Pos, E - Pos);
    Pos = E + 2;
    size_t Colon = H.find(':');
    if (Colon == std::string::npos || Colon == 0) {
      Err = "header line without name: separator";
      return Parse::Bad;
    }
    std::string Name = H.substr(0, Colon);
    for (char C : Name)
      if (!isTokenByte(C)) {
        Err = "invalid header name";
        return Parse::Bad;
      }
    std::string Value = trimOws(H.substr(Colon + 1));
    for (char C : Value)
      if ((static_cast<unsigned char>(C) < 0x20 && C != '\t') || C == 0x7F) {
        Err = "control byte in header value";
        return Parse::Bad;
      }
    Name = lower(Name);
    if (Name == "transfer-encoding") {
      Err = "Transfer-Encoding is not supported";
      return Parse::Bad;
    }
    if (Name == "content-length") {
      if (Value.empty() || Value.size() > 18) {
        Err = "bad Content-Length";
        return Parse::Bad;
      }
      uint64_t V = 0;
      for (char C : Value) {
        if (!std::isdigit(static_cast<unsigned char>(C))) {
          Err = "Content-Length is not a number";
          return Parse::Bad;
        }
        V = V * 10 + static_cast<uint64_t>(C - '0');
      }
      if (HaveLength && V != ContentLength) {
        Err = "conflicting Content-Length headers";
        return Parse::Bad;
      }
      ContentLength = V;
      HaveLength = true;
    }
    R.Headers.emplace_back(std::move(Name), std::move(Value));
  }

  // -- Body ----------------------------------------------------------------
  if (ContentLength > L.MaxBodyBytes) {
    Err = "body exceeds limit";
    return Parse::TooLarge;
  }
  size_t BodyStart = HdrEnd + 4;
  if (Buf.size() - BodyStart < ContentLength)
    return Parse::NeedMore;
  R.Body = Buf.substr(BodyStart, ContentLength);
  return Parse::Ok;
}

//===----------------------------------------------------------------------===//
// Responses
//===----------------------------------------------------------------------===//

const char *statusText(int Code) {
  switch (Code) {
  case 200:
    return "OK";
  case 202:
    return "Accepted";
  case 400:
    return "Bad Request";
  case 404:
    return "Not Found";
  case 405:
    return "Method Not Allowed";
  case 408:
    return "Request Timeout";
  case 409:
    return "Conflict";
  case 413:
    return "Payload Too Large";
  case 429:
    return "Too Many Requests";
  case 500:
    return "Internal Server Error";
  case 503:
    return "Service Unavailable";
  default:
    return "Status";
  }
}

std::string serializeResponse(const Response &R) {
  std::string Out;
  Out += "HTTP/1.1 ";
  Out += std::to_string(R.Code);
  Out += ' ';
  Out += statusText(R.Code);
  Out += "\r\nContent-Type: ";
  Out += R.ContentType;
  Out += "\r\nContent-Length: ";
  Out += std::to_string(R.Body.size());
  Out += "\r\nConnection: close\r\n";
  for (const auto &[K, V] : R.ExtraHeaders) {
    Out += K;
    Out += ": ";
    Out += V;
    Out += "\r\n";
  }
  Out += "\r\n";
  Out += R.Body;
  return Out;
}

//===----------------------------------------------------------------------===//
// Server
//===----------------------------------------------------------------------===//

struct Server::Impl {
  int ListenFd = -1;
  int Port = 0;
  Handler Handle;
  Options Opts;
  std::thread Acceptor;
  std::vector<std::thread> Pool;
  std::mutex Mu;
  std::condition_variable Cv;
  std::deque<int> Pending; // accepted fds awaiting a pool thread
  bool Quit = false;
};

Server::Server() : I(new Impl) {}
Server::~Server() { stop(); }
int Server::port() const { return I->Port; }

#if DIDEROT_HAVE_SOCKETS

namespace {

void writeAll(int Fd, const char *Data, size_t Len) {
  size_t Off = 0;
  while (Off < Len) {
    ssize_t N = ::send(Fd, Data + Off, Len - Off, MSG_NOSIGNAL);
    if (N < 0 && errno == EINTR)
      continue; // interrupted by a signal mid-write; the fd is still good
    if (N <= 0)
      return; // peer went away; nothing sensible to do
    Off += static_cast<size_t>(N);
  }
}

void sendResponse(int Fd, const Response &R) {
  std::string Wire = serializeResponse(R);
  writeAll(Fd, Wire.data(), Wire.size());
}

/// Serve one connection: read until a full request parses (bounded by the
/// limits and the receive timeout), dispatch, respond, close.
void serveConnection(int Fd, const Server::Options &O,
                     const Server::Handler &Handle) {
  timeval Tv{};
  Tv.tv_sec = O.RecvTimeoutMs / 1000;
  Tv.tv_usec = (O.RecvTimeoutMs % 1000) * 1000;
  ::setsockopt(Fd, SOL_SOCKET, SO_RCVTIMEO, &Tv, sizeof(Tv));

  std::string Buf;
  Request Req;
  std::string Err;
  bool SentContinue = false;
  // Hard cap on total buffered bytes regardless of parse state.
  const size_t MaxTotal = O.Limits.MaxRequestLine + O.Limits.MaxHeaderBytes +
                          O.Limits.MaxBodyBytes;
  for (;;) {
    char Chunk[8192];
    ssize_t N = ::recv(Fd, Chunk, sizeof(Chunk), 0);
    if (N < 0 && errno == EINTR)
      continue; // a signal is not a timeout; keep reading
    if (N <= 0) {
      // Timeout, reset, or premature close mid-request.
      if (!Buf.empty())
        sendResponse(Fd, {408, "text/plain; charset=utf-8",
                          "request timed out\n", {}});
      ::close(Fd);
      return;
    }
    Buf.append(Chunk, static_cast<size_t>(N));
    if (Buf.size() > MaxTotal) {
      sendResponse(Fd, {413, "text/plain; charset=utf-8",
                        "request too large\n", {}});
      ::close(Fd);
      return;
    }
    Parse P = parseRequest(Buf, Req, Err, O.Limits);
    if (P == Parse::NeedMore) {
      // curl sends `Expect: 100-continue` for larger POST bodies and waits
      // ~1s for the interim response; acknowledge once so program uploads
      // are not needlessly delayed.
      if (!SentContinue) {
        size_t HdrEnd = Buf.find("\r\n\r\n");
        if (HdrEnd != std::string::npos &&
            lower(Buf.substr(0, HdrEnd)).find("expect: 100-continue") !=
                std::string::npos) {
          const char *Cont = "HTTP/1.1 100 Continue\r\n\r\n";
          writeAll(Fd, Cont, std::strlen(Cont));
          SentContinue = true;
        }
      }
      continue;
    }
    if (P == Parse::Bad) {
      sendResponse(Fd, {400, "text/plain; charset=utf-8", Err + "\n", {}});
      ::close(Fd);
      return;
    }
    if (P == Parse::TooLarge) {
      sendResponse(Fd, {413, "text/plain; charset=utf-8", Err + "\n", {}});
      ::close(Fd);
      return;
    }
    break; // Parse::Ok
  }
  Response Resp = Handle(Req);
  sendResponse(Fd, Resp);
  ::close(Fd);
}

} // namespace

Status Server::start(int Port, Handler H, Options O) {
  if (I->Acceptor.joinable())
    return Status::error("http server already running");
  if (!H)
    return Status::error("http server needs a handler");
  if (O.HandlerThreads < 1)
    O.HandlerThreads = 1;
  // A client that disconnects mid-response would otherwise kill the whole
  // process with SIGPIPE on platforms where MSG_NOSIGNAL is a no-op (and on
  // any stray write outside writeAll). Ignore it process-wide; every write
  // path here already handles the EPIPE errno return.
  std::signal(SIGPIPE, SIG_IGN);
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0)
    return Status::error("http server: socket() failed");
  int One = 1;
  ::setsockopt(Fd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  Addr.sin_port = htons(static_cast<uint16_t>(Port));
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    ::close(Fd);
    return Status::error("http server: cannot bind 127.0.0.1:" +
                         std::to_string(Port));
  }
  if (::listen(Fd, O.Backlog) < 0) {
    ::close(Fd);
    return Status::error("http server: listen() failed");
  }
  sockaddr_in Bound{};
  socklen_t BoundLen = sizeof(Bound);
  if (::getsockname(Fd, reinterpret_cast<sockaddr *>(&Bound), &BoundLen) == 0)
    I->Port = ntohs(Bound.sin_port);
  else
    I->Port = Port;
  I->ListenFd = Fd;
  I->Handle = std::move(H);
  I->Opts = O;
  I->Quit = false;

  Impl *Im = I.get();
  for (int T = 0; T < O.HandlerThreads; ++T)
    Im->Pool.emplace_back([Im] {
      for (;;) {
        int Fd;
        {
          std::unique_lock<std::mutex> Lk(Im->Mu);
          Im->Cv.wait(Lk, [Im] { return Im->Quit || !Im->Pending.empty(); });
          if (Im->Pending.empty())
            return; // Quit and drained
          Fd = Im->Pending.front();
          Im->Pending.pop_front();
        }
        serveConnection(Fd, Im->Opts, Im->Handle);
      }
    });
  Im->Acceptor = std::thread([Im] {
    for (;;) {
      int C = ::accept(Im->ListenFd, nullptr, nullptr);
      if (C < 0) {
        if (errno == EINTR || errno == ECONNABORTED)
          continue; // interrupted or peer gave up; the listener is fine
        std::lock_guard<std::mutex> Lk(Im->Mu);
        if (Im->Quit)
          return;
        continue; // transient accept error
      }
      std::lock_guard<std::mutex> Lk(Im->Mu);
      if (Im->Quit || Im->Pending.size() >= 128) {
        // Shutting down, or the pool is hopelessly behind: shed load.
        ::close(C);
        if (Im->Quit)
          return;
        continue;
      }
      Im->Pending.push_back(C);
      Im->Cv.notify_one();
    }
  });
  return Status::ok();
}

void Server::stop() {
  if (!I->Acceptor.joinable())
    return;
  {
    std::lock_guard<std::mutex> Lk(I->Mu);
    I->Quit = true;
  }
  // Unblock accept(): shutdown wakes it with an error on Linux; closing the
  // fd covers the platforms where it does not.
  ::shutdown(I->ListenFd, SHUT_RDWR);
  ::close(I->ListenFd);
  I->Cv.notify_all();
  I->Acceptor.join();
  for (std::thread &T : I->Pool)
    T.join();
  I->Pool.clear();
  for (int Fd : I->Pending) // sockets accepted but never served
    ::close(Fd);
  I->Pending.clear();
  I->ListenFd = -1;
}

#else // !DIDEROT_HAVE_SOCKETS

Status Server::start(int, Handler, Options) {
  return Status::error("http server: no socket support on this platform");
}

void Server::stop() {}

#endif

} // namespace diderot::http

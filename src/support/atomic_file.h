//===--- support/atomic_file.h - temp-write + rename file publication --------===//
//
// Part of the Diderot-C++ reproduction (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The crash-consistent file-publication idiom used throughout the system:
/// write the full contents to a process-unique temp file in the same
/// directory, flush, then rename(2) over the destination. rename within a
/// directory is atomic, so a concurrent reader (or a crash mid-write) sees
/// either the old file or the new one, never a torn prefix.
///
/// Extracted from the compile cache's index writer (codegen/cache.cpp) so
/// the replay-bundle manifests (observe/replay.cpp) and the daemon's
/// recordings index (serve/daemon.cpp) share one tested implementation.
///
//===----------------------------------------------------------------------===//

#ifndef DIDEROT_SUPPORT_ATOMIC_FILE_H
#define DIDEROT_SUPPORT_ATOMIC_FILE_H

#include <string>

#include "support/result.h"

namespace diderot::support {

/// Atomically replace \p Path with \p Contents: write to
/// "<Path>.tmp.<pid>", flush, rename over \p Path. On any failure the temp
/// file is removed and \p Path is left untouched (old contents intact).
Status writeFileAtomic(const std::string &Path, const std::string &Contents);

/// Like writeFileAtomic but failures are swallowed — for inventory files
/// whose loss is recoverable (the cache index, the recordings index).
/// Returns true when the rename landed.
bool writeFileAtomicBestEffort(const std::string &Path,
                               const std::string &Contents);

} // namespace diderot::support

#endif // DIDEROT_SUPPORT_ATOMIC_FILE_H

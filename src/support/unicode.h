//===--- support/unicode.h - UTF-8 decoding for the lexer ----------------===//
//
// Part of the Diderot-C++ reproduction (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Diderot source uses Unicode mathematical operators (the paper's examples
/// use nabla, circled-asterisk convolution, dot/cross/outer products and pi).
/// The lexer decodes UTF-8 with these helpers; every Unicode operator also
/// has an ASCII spelling for keyboards without them.
///
//===----------------------------------------------------------------------===//

#ifndef DIDEROT_SUPPORT_UNICODE_H
#define DIDEROT_SUPPORT_UNICODE_H

#include <cstdint>
#include <string>

namespace diderot {

/// Unicode code points for Diderot's mathematical operators.
namespace uchar {
constexpr uint32_t Nabla = 0x2207;      // ∇  gradient
constexpr uint32_t CircledAst = 0x229B; // ⊛  convolution
constexpr uint32_t OTimes = 0x2297;     // ⊗  tensor (outer) product
constexpr uint32_t Times = 0x00D7;      // ×  cross product
constexpr uint32_t Bullet = 0x2022;     // •  dot (inner) product
constexpr uint32_t Pi = 0x03C0;         // π
constexpr uint32_t Infinity = 0x221E;   // ∞
} // namespace uchar

/// Decode the UTF-8 sequence starting at \p S[Pos]. On success advances
/// \p Pos past the sequence and returns the code point; on a malformed
/// sequence returns 0xFFFD and advances one byte.
uint32_t decodeUtf8(const std::string &S, size_t &Pos);

/// Encode \p CodePoint as UTF-8 and append it to \p Out.
void encodeUtf8(uint32_t CodePoint, std::string &Out);

} // namespace diderot

#endif // DIDEROT_SUPPORT_UNICODE_H

//===--- support/strings.cpp ----------------------------------------------===//

#include "support/strings.h"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace diderot {

std::vector<std::string> splitString(const std::string &S, char Sep) {
  std::vector<std::string> Parts;
  std::string Cur;
  for (char C : S) {
    if (C == Sep) {
      Parts.push_back(Cur);
      Cur.clear();
    } else {
      Cur.push_back(C);
    }
  }
  Parts.push_back(Cur);
  return Parts;
}

std::string joinStrings(const std::vector<std::string> &Parts,
                        const std::string &Sep) {
  std::string Out;
  for (size_t I = 0; I < Parts.size(); ++I) {
    if (I != 0)
      Out += Sep;
    Out += Parts[I];
  }
  return Out;
}

std::string trimString(const std::string &S) {
  size_t B = 0, E = S.size();
  while (B < E && std::isspace(static_cast<unsigned char>(S[B])))
    ++B;
  while (E > B && std::isspace(static_cast<unsigned char>(S[E - 1])))
    --E;
  return S.substr(B, E - B);
}

bool startsWith(const std::string &S, const std::string &Prefix) {
  return S.size() >= Prefix.size() && S.compare(0, Prefix.size(), Prefix) == 0;
}

bool endsWith(const std::string &S, const std::string &Suffix) {
  return S.size() >= Suffix.size() &&
         S.compare(S.size() - Suffix.size(), Suffix.size(), Suffix) == 0;
}

std::string jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (unsigned char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\b':
      Out += "\\b";
      break;
    case '\f':
      Out += "\\f";
      break;
    default:
      if (C < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += static_cast<char>(C);
      }
    }
  }
  return Out;
}

bool parseInt64(const std::string &S, int64_t &Out) {
  std::string T = trimString(S);
  if (T.empty())
    return false;
  size_t I = 0;
  bool Neg = false;
  if (T[0] == '+' || T[0] == '-') {
    Neg = T[0] == '-';
    I = 1;
    if (I == T.size())
      return false;
  }
  // Accumulate negatively: |INT64_MIN| > INT64_MAX, so the negative range
  // covers both signs without overflowing en route.
  constexpr int64_t Min = INT64_MIN;
  int64_t V = 0;
  for (; I < T.size(); ++I) {
    char C = T[I];
    if (C < '0' || C > '9')
      return false;
    int D = C - '0';
    if (V < (Min + D) / 10)
      return false;
    V = V * 10 - D;
  }
  if (!Neg) {
    if (V == Min)
      return false;
    V = -V;
  }
  Out = V;
  return true;
}

bool parseInt(const std::string &S, int &Out) {
  int64_t V;
  if (!parseInt64(S, V) || V < INT32_MIN || V > INT32_MAX)
    return false;
  Out = static_cast<int>(V);
  return true;
}

std::string formatReal(double V) {
  if (std::isnan(V))
    return "nan";
  if (std::isinf(V))
    return V > 0 ? "inf" : "-inf";
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.17g", V);
  std::string S(Buf);
  // Ensure the literal reads as floating point.
  if (S.find_first_of(".eE") == std::string::npos)
    S += ".0";
  return S;
}

} // namespace diderot

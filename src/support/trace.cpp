//===--- support/trace.cpp - request-scoped tracing primitives --------------===//
//
// Part of the Diderot-C++ reproduction (PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "support/trace.h"

#include <chrono>
#include <random>

namespace diderot::tracing {

namespace {

const char HexDigits[] = "0123456789abcdef";

void appendHex64(std::string &Out, uint64_t V) {
  for (int Shift = 60; Shift >= 0; Shift -= 4)
    Out += HexDigits[(V >> Shift) & 0xF];
}

/// Parse exactly \p Len lower-or-upper hex chars at \p S[Off]. Returns
/// false on any non-hex byte.
bool parseHex(const std::string &S, size_t Off, size_t Len, uint64_t &Out) {
  uint64_t V = 0;
  for (size_t I = 0; I < Len; ++I) {
    char C = S[Off + I];
    int D;
    if (C >= '0' && C <= '9')
      D = C - '0';
    else if (C >= 'a' && C <= 'f')
      D = C - 'a' + 10;
    else if (C >= 'A' && C <= 'F')
      D = C - 'A' + 10;
    else
      return false;
    V = (V << 4) | static_cast<uint64_t>(D);
  }
  Out = V;
  return true;
}

uint64_t splitmix64(uint64_t X) {
  X += 0x9e3779b97f4a7c15ull;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ull;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebull;
  return X ^ (X >> 31);
}

class SplitMixIdSource : public IdSource {
public:
  SplitMixIdSource() {
    std::random_device Rd;
    uint64_t Seed = (static_cast<uint64_t>(Rd()) << 32) ^ Rd();
    Counter.store(splitmix64(Seed ^ 0x5bf03635aca2fdd8ull));
  }

  uint64_t nextId() override {
    // splitmix64 is a bijection over a strided counter, so ids never
    // repeat within a process; 0 maps to a nonzero output for every
    // realistic counter value, but guard anyway — 0 is reserved.
    uint64_t Id;
    do
      Id = splitmix64(Counter.fetch_add(0x9e3779b97f4a7c15ull,
                                        std::memory_order_relaxed));
    while (Id == 0);
    return Id;
  }

private:
  std::atomic<uint64_t> Counter{0};
};

class SteadyClockImpl : public Clock {
public:
  SteadyClockImpl() : T0(std::chrono::steady_clock::now()) {}
  uint64_t nowNs() override {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - T0)
            .count());
  }

private:
  std::chrono::steady_clock::time_point T0;
};

} // namespace

std::string hexTraceId(const TraceId &T) {
  std::string Out;
  Out.reserve(32);
  appendHex64(Out, T.Hi);
  appendHex64(Out, T.Lo);
  return Out;
}

std::string hexSpanId(uint64_t S) {
  std::string Out;
  Out.reserve(16);
  appendHex64(Out, S);
  return Out;
}

std::string TraceContext::traceparent() const {
  std::string Out;
  Out.reserve(55);
  Out += "00-";
  appendHex64(Out, Trace.Hi);
  appendHex64(Out, Trace.Lo);
  Out += '-';
  appendHex64(Out, Span);
  Out += Sampled ? "-01" : "-00";
  return Out;
}

bool parseTraceparent(const std::string &Header, TraceContext &Out) {
  // version(2) '-' trace-id(32) '-' parent-id(16) '-' flags(2); future
  // versions may append fields after the flags, so accept longer strings
  // only when the extra part starts with '-'.
  if (Header.size() < 55)
    return false;
  if (Header.size() > 55 && Header[55] != '-')
    return false;
  if (Header[2] != '-' || Header[35] != '-' || Header[52] != '-')
    return false;
  uint64_t Version, Hi, Lo, Span, Flags;
  if (!parseHex(Header, 0, 2, Version) || !parseHex(Header, 3, 16, Hi) ||
      !parseHex(Header, 19, 16, Lo) || !parseHex(Header, 36, 16, Span) ||
      !parseHex(Header, 53, 2, Flags))
    return false;
  if (Version == 0xff)
    return false; // reserved invalid version
  if (Version == 0 && Header.size() != 55)
    return false; // version 00 has no extra fields
  if ((Hi | Lo) == 0 || Span == 0)
    return false; // all-zero ids are invalid per spec
  Out.Trace = {Hi, Lo};
  Out.Span = Span;
  Out.Sampled = (Flags & 0x1) != 0;
  return true;
}

IdSource &defaultIdSource() {
  static SplitMixIdSource S;
  return S;
}

Clock &steadyClock() {
  static SteadyClockImpl C;
  return C;
}

TraceContext makeRoot(IdSource &Ids, bool Sampled) {
  TraceContext C;
  C.Trace.Hi = Ids.nextId();
  C.Trace.Lo = Ids.nextId();
  C.Span = Ids.nextId();
  C.Sampled = Sampled;
  return C;
}

TraceContext makeChild(const TraceContext &Parent, IdSource &Ids) {
  TraceContext C = Parent;
  C.Span = Ids.nextId();
  return C;
}

void TraceRing::add(SpanTree T) {
  std::lock_guard<std::mutex> G(Mu);
  Trees.push_back(std::move(T));
  while (Trees.size() > Cap)
    Trees.pop_front();
}

std::vector<SpanTree> TraceRing::snapshot() const {
  std::lock_guard<std::mutex> G(Mu);
  return {Trees.begin(), Trees.end()};
}

size_t TraceRing::size() const {
  std::lock_guard<std::mutex> G(Mu);
  return Trees.size();
}

bool parseSampleSpec(const std::string &Spec, uint32_t &N) {
  if (Spec == "off" || Spec == "none") {
    N = 0;
    return true;
  }
  if (Spec == "all") {
    N = 1;
    return true;
  }
  std::string Denom = Spec;
  size_t Slash = Spec.find('/');
  if (Slash != std::string::npos) {
    if (Spec.substr(0, Slash) != "1")
      return false; // only 1/N ratios are meaningful for a head sampler
    Denom = Spec.substr(Slash + 1);
  }
  if (Denom.empty() || Denom.size() > 9)
    return false;
  uint64_t V = 0;
  for (char C : Denom) {
    if (C < '0' || C > '9')
      return false;
    V = V * 10 + static_cast<uint64_t>(C - '0');
  }
  N = static_cast<uint32_t>(V);
  return true;
}

} // namespace diderot::tracing

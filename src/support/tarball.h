//===--- support/tarball.h - minimal ustar archive pack/unpack ---------------===//
//
// Part of the Diderot-C++ reproduction (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Just enough POSIX ustar to ship a replay bundle (docs/REPLAY.md) over
/// HTTP as one byte stream: regular files with relative paths, no
/// symlinks, no ownership, no long-name extensions. Bundles are flat
/// directories of short-named files, so the 100-character ustar name field
/// is never a constraint; names that would not fit are an error rather
/// than a silent truncation.
///
//===----------------------------------------------------------------------===//

#ifndef DIDEROT_SUPPORT_TARBALL_H
#define DIDEROT_SUPPORT_TARBALL_H

#include <string>
#include <utility>
#include <vector>

#include "support/result.h"

namespace diderot::support {

/// (relative path, file bytes) pairs — the in-memory form of an archive.
using TarEntries = std::vector<std::pair<std::string, std::string>>;

/// Serialize \p Entries as a ustar stream (two zero blocks at the end).
/// Errors on names over 99 characters or containing "..".
Result<std::string> tarSerialize(const TarEntries &Entries);

/// Parse a ustar stream produced by tarSerialize (or any archiver limited
/// to plain files). Non-file entries (directories, links) are skipped.
Result<TarEntries> tarParse(const std::string &Bytes);

/// Archive every regular file directly inside \p Dir (non-recursive — a
/// replay bundle is flat) into a ustar byte stream.
Result<std::string> tarDirectory(const std::string &Dir);

/// Extract \p Bytes into \p Dir (created if needed). Entry names must be
/// bare file names; anything with a path separator or ".." is rejected.
Status tarExtract(const std::string &Bytes, const std::string &Dir);

} // namespace diderot::support

#endif // DIDEROT_SUPPORT_TARBALL_H

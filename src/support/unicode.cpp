//===--- support/unicode.cpp ----------------------------------------------===//

#include "support/unicode.h"

namespace diderot {

uint32_t decodeUtf8(const std::string &S, size_t &Pos) {
  if (Pos >= S.size())
    return 0;
  auto Byte = [&](size_t I) -> uint32_t {
    return static_cast<unsigned char>(S[I]);
  };
  uint32_t B0 = Byte(Pos);
  if (B0 < 0x80) {
    ++Pos;
    return B0;
  }
  auto Cont = [&](size_t I) {
    return I < S.size() && (Byte(I) & 0xC0) == 0x80;
  };
  if ((B0 & 0xE0) == 0xC0 && Cont(Pos + 1)) {
    uint32_t CP = ((B0 & 0x1F) << 6) | (Byte(Pos + 1) & 0x3F);
    Pos += 2;
    return CP;
  }
  if ((B0 & 0xF0) == 0xE0 && Cont(Pos + 1) && Cont(Pos + 2)) {
    uint32_t CP = ((B0 & 0x0F) << 12) | ((Byte(Pos + 1) & 0x3F) << 6) |
                  (Byte(Pos + 2) & 0x3F);
    Pos += 3;
    return CP;
  }
  if ((B0 & 0xF8) == 0xF0 && Cont(Pos + 1) && Cont(Pos + 2) && Cont(Pos + 3)) {
    uint32_t CP = ((B0 & 0x07) << 18) | ((Byte(Pos + 1) & 0x3F) << 12) |
                  ((Byte(Pos + 2) & 0x3F) << 6) | (Byte(Pos + 3) & 0x3F);
    Pos += 4;
    return CP;
  }
  ++Pos;
  return 0xFFFD;
}

void encodeUtf8(uint32_t CP, std::string &Out) {
  if (CP < 0x80) {
    Out.push_back(static_cast<char>(CP));
  } else if (CP < 0x800) {
    Out.push_back(static_cast<char>(0xC0 | (CP >> 6)));
    Out.push_back(static_cast<char>(0x80 | (CP & 0x3F)));
  } else if (CP < 0x10000) {
    Out.push_back(static_cast<char>(0xE0 | (CP >> 12)));
    Out.push_back(static_cast<char>(0x80 | ((CP >> 6) & 0x3F)));
    Out.push_back(static_cast<char>(0x80 | (CP & 0x3F)));
  } else {
    Out.push_back(static_cast<char>(0xF0 | (CP >> 18)));
    Out.push_back(static_cast<char>(0x80 | ((CP >> 12) & 0x3F)));
    Out.push_back(static_cast<char>(0x80 | ((CP >> 6) & 0x3F)));
    Out.push_back(static_cast<char>(0x80 | (CP & 0x3F)));
  }
}

} // namespace diderot

//===--- support/atomic_file.cpp - temp-write + rename file publication ------===//

#include "support/atomic_file.h"

#include <filesystem>
#include <fstream>
#include <unistd.h>

#include "support/strings.h"

namespace diderot::support {

namespace fs = std::filesystem;

Status writeFileAtomic(const std::string &Path, const std::string &Contents) {
  fs::path Dest(Path);
  // Same-directory temp so the rename never crosses a filesystem boundary.
  fs::path Tmp = Dest;
  Tmp += strf(".tmp.", ::getpid());
  {
    std::ofstream Out(Tmp, std::ios::binary | std::ios::trunc);
    if (!Out)
      return Status::error(strf("cannot write ", Tmp.string()));
    Out.write(Contents.data(), static_cast<std::streamsize>(Contents.size()));
    if (!Out.flush()) {
      Out.close();
      std::error_code EC;
      fs::remove(Tmp, EC);
      return Status::error(strf("short write to ", Tmp.string()));
    }
  }
  std::error_code EC;
  fs::rename(Tmp, Dest, EC);
  if (EC) {
    std::error_code E2;
    fs::remove(Tmp, E2);
    return Status::error(
        strf("cannot install ", Dest.string(), ": ", EC.message()));
  }
  return Status::ok();
}

bool writeFileAtomicBestEffort(const std::string &Path,
                               const std::string &Contents) {
  return writeFileAtomic(Path, Contents).isOk();
}

} // namespace diderot::support

//===--- support/subprocess.cpp - supervised child-process execution ---------===//
//
// Part of the Diderot-C++ reproduction (PLDI 2012).
//
// See subprocess.h for the contract. The implementation notes that matter:
//
//  * The child calls setpgid(0, 0) before exec, making it the leader of a
//    fresh process group; the timeout path kills the *group* (-pid), so a
//    compiler driver that forked cc1/ld grandchildren cannot leave them
//    running after the supervisor gives up.
//  * The parent owns the read end of one pipe carrying the child's combined
//    stdout+stderr and multiplexes "wait for bytes" and "wait for the
//    deadline" through poll(2). Draining continues after expiry so a killed
//    child's buffered diagnostics still reach the caller.
//  * Between fork() and exec() only async-signal-safe calls run (dup2,
//    setpgid, execvp, _exit). The daemon forks from a heavily threaded
//    process; malloc or stdio here can deadlock on a lock another thread
//    held at fork time.
//
//===----------------------------------------------------------------------===//

#include "support/subprocess.h"

#if defined(__unix__) || defined(__APPLE__)
#define DIDEROT_HAVE_SUBPROCESS 1
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <fcntl.h>
#include <poll.h>
#include <sys/wait.h>
#include <thread>
#include <unistd.h>
#endif

#include "support/strings.h"

namespace diderot::support {

std::vector<std::string> splitCommandWords(const std::string &S) {
  std::vector<std::string> Words;
  std::string Cur;
  for (char C : S) {
    if (C == ' ' || C == '\t' || C == '\n' || C == '\r') {
      if (!Cur.empty())
        Words.push_back(std::move(Cur)), Cur.clear();
    } else {
      Cur += C;
    }
  }
  if (!Cur.empty())
    Words.push_back(std::move(Cur));
  return Words;
}

#if DIDEROT_HAVE_SUBPROCESS

namespace {

/// One attempt: fork, exec, supervise until exit or deadline. Returns an
/// error only for supervisor-side failures (pipe/fork exhaustion).
Result<SubprocessResult> runOnce(const SubprocessCommand &C) {
  using RR = Result<SubprocessResult>;
  int Pipe[2];
  if (::pipe(Pipe) != 0)
    return RR::error(strf("subprocess: pipe() failed: ", std::strerror(errno)));

  // argv as char* vector; stable for the child because the parent's copy
  // outlives the exec (the child gets a COW snapshot either way).
  std::vector<char *> Argv;
  Argv.reserve(C.Argv.size() + 1);
  for (const std::string &A : C.Argv)
    Argv.push_back(const_cast<char *>(A.c_str()));
  Argv.push_back(nullptr);

  pid_t Pid = ::fork();
  if (Pid < 0) {
    ::close(Pipe[0]);
    ::close(Pipe[1]);
    return RR::error(strf("subprocess: fork() failed: ", std::strerror(errno)));
  }
  if (Pid == 0) {
    // Child: own process group, stdout+stderr into the pipe, stdin from
    // /dev/null so a compiler that unexpectedly reads input gets EOF
    // instead of inheriting (and blocking on) the daemon's stdin.
    ::setpgid(0, 0);
    ::close(Pipe[0]);
    int DevNull = ::open("/dev/null", O_RDONLY);
    if (DevNull >= 0)
      ::dup2(DevNull, STDIN_FILENO);
    ::dup2(Pipe[1], STDOUT_FILENO);
    ::dup2(Pipe[1], STDERR_FILENO);
    ::close(Pipe[1]);
    ::execvp(Argv[0], Argv.data());
    // exec failed; 127 is the shell's convention for "command not found".
    _exit(127);
  }

  // Parent. Racing the child's own setpgid is benign: whichever call wins,
  // the group exists before the parent ever signals it (EACCES/EPERM from
  // the loser is ignored).
  ::setpgid(Pid, Pid);
  ::close(Pipe[1]);

  SubprocessResult R;
  auto T0 = std::chrono::steady_clock::now();
  auto DeadlineAt =
      C.TimeoutMs > 0 ? T0 + std::chrono::milliseconds(C.TimeoutMs)
                      : std::chrono::steady_clock::time_point::max();
  // After the timeout SIGKILL the drain itself gets a bounded grace: EOF
  // needs every holder of the write end to exit, and a grandchild that
  // left the process group (setsid in a daemonizing build tool) survives
  // the group kill with the fd — waiting for its EOF unconditionally
  // would hang the supervisor despite the wall-clock budget.
  constexpr int64_t KillGraceMs = 500;
  bool Killed = false;
  bool PipeOpen = true;
  auto KillGraceAt = std::chrono::steady_clock::time_point::max();
  char Buf[16384];
  // Supervise: drain the pipe until EOF (the child and every inheritor of
  // the write end exited) while watching the deadline.
  while (PipeOpen) {
    int WaitMs = -1;
    if (Killed) {
      auto Left = std::chrono::duration_cast<std::chrono::milliseconds>(
                      KillGraceAt - std::chrono::steady_clock::now())
                      .count();
      if (Left <= 0)
        break; // grace over: give up on EOF, reap with what we have
      WaitMs = static_cast<int>(Left > 100 ? 100 : Left);
    } else if (C.TimeoutMs > 0) {
      auto Left = std::chrono::duration_cast<std::chrono::milliseconds>(
                      DeadlineAt - std::chrono::steady_clock::now())
                      .count();
      if (Left <= 0) {
        ::kill(-Pid, SIGKILL);
        // Also by pid: if the child moved itself to another group the
        // group kill misses it and the blocking waitpid below would hang.
        ::kill(Pid, SIGKILL);
        Killed = true;
        R.TimedOut = true;
        KillGraceAt = std::chrono::steady_clock::now() +
                      std::chrono::milliseconds(KillGraceMs);
        continue; // keep draining whatever the dead group buffered
      }
      WaitMs = static_cast<int>(Left > 1000 ? 1000 : Left);
    }
    pollfd Pfd{Pipe[0], POLLIN, 0};
    int PR = ::poll(&Pfd, 1, WaitMs);
    if (PR < 0) {
      if (errno == EINTR)
        continue;
      break; // poll broke; fall through to waitpid with what we have
    }
    if (PR == 0)
      continue; // deadline tick
    ssize_t N = ::read(Pipe[0], Buf, sizeof(Buf));
    if (N < 0) {
      if (errno == EINTR)
        continue;
      break;
    }
    if (N == 0) {
      PipeOpen = false;
      break;
    }
    if (R.Output.size() < SubprocessMaxCapture) {
      size_t Room = SubprocessMaxCapture - R.Output.size();
      R.Output.append(Buf, static_cast<size_t>(N) > Room
                               ? Room
                               : static_cast<size_t>(N));
    }
    // Past the cap the bytes are read and dropped so the child never
    // blocks on a full pipe.
  }
  ::close(Pipe[0]);

  int WStatus = 0;
  pid_t W;
  do
    W = ::waitpid(Pid, &WStatus, 0);
  while (W < 0 && errno == EINTR);
  R.WallNs = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - T0)
          .count());
  if (W == Pid) {
    if (WIFEXITED(WStatus))
      R.ExitCode = WEXITSTATUS(WStatus);
    else if (WIFSIGNALED(WStatus)) {
      R.TermSignal = WTERMSIG(WStatus);
      // A timeout kill surfaces as TimedOut, not as a generic signal death
      // (signal deaths are the retryable class; timeouts must not be).
      if (R.TimedOut && R.TermSignal == SIGKILL)
        R.TermSignal = 0;
    }
  }
  // Sweep stragglers: if the child exited but forked grandchildren into
  // its group, they must not outlive the supervision either. ESRCH (group
  // already empty) is the common, ignored case.
  ::kill(-Pid, SIGKILL);
  return R;
}

} // namespace

Result<SubprocessResult> runSupervised(const SubprocessCommand &C) {
  using RR = Result<SubprocessResult>;
  if (C.Argv.empty() || C.Argv[0].empty())
    return RR::error("subprocess: empty argv");
  int64_t Backoff = C.BackoffMs;
  int Attempt = 1;
  for (;;) {
    Result<SubprocessResult> R = runOnce(C);
    if (!R.isOk())
      return R;
    R->Attempts = Attempt;
    // Retry only the transient class: the child died on a signal (OOM
    // kill, crashed compiler). Nonzero exits are deterministic; timeouts
    // already consumed the whole budget once.
    if (R->TermSignal == 0 || R->TimedOut || Attempt > C.MaxRetries)
      return R;
    if (Backoff > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(Backoff));
      Backoff *= 2;
    }
    ++Attempt;
  }
}

#else // !DIDEROT_HAVE_SUBPROCESS

Result<SubprocessResult> runSupervised(const SubprocessCommand &) {
  return Result<SubprocessResult>::error(
      "subprocess: no fork/exec support on this platform");
}

#endif

} // namespace diderot::support

//===--- support/location.h - source locations ---------------------------===//
//
// Part of the Diderot-C++ reproduction (PLDI 2012).
//
//===----------------------------------------------------------------------===//

#ifndef DIDEROT_SUPPORT_LOCATION_H
#define DIDEROT_SUPPORT_LOCATION_H

#include <string>

#include "support/strings.h"

namespace diderot {

/// A position in a Diderot source file (1-based line and column).
struct SourceLoc {
  int Line = 0;
  int Col = 0;

  bool isValid() const { return Line > 0; }
  std::string str() const { return strf(Line, ":", Col); }

  bool operator==(const SourceLoc &) const = default;
};

} // namespace diderot

#endif // DIDEROT_SUPPORT_LOCATION_H

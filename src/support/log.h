//===--- support/log.h - structured, leveled, rate-limited logging ----------===//
//
// Part of the Diderot-C++ reproduction (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one logging path for the driver and the serving daemon, replacing
/// the scattered `fprintf(stderr, ...)` prints. Two output modes over the
/// same call sites:
///
///   * text (default): `2026-08-08T12:34:56.789Z INFO  job done job=j-3 ...`
///     — what a human tails;
///   * JSONL (`--log-json`): one JSON object per line with `ts`, `level`,
///     `msg`, and every field — what a collector ingests.
///
/// Records are stamped with whatever fields the caller attaches; the
/// serving path attaches `trace`, `span`, and `job` ids (support/trace.h)
/// on every record, so a slow request found in a log line points straight
/// at a retrievable `GET /jobs/<id>/trace`.
///
/// Rate limiting is per call-site key (`logEvery`): at most N records per
/// key per second; suppressed records are counted and the count is
/// attached (`suppressed=K`) to the next record that passes, so bursts
/// never silently vanish — one line says how big the burst was.
///
/// Thread-safety: all methods are safe from any thread; one mutex
/// serializes record assembly and the write, so lines never interleave.
/// Level filtering happens before the lock (an atomic load), keeping
/// disabled levels nearly free.
///
//===----------------------------------------------------------------------===//

#ifndef DIDEROT_SUPPORT_LOG_H
#define DIDEROT_SUPPORT_LOG_H

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace diderot::logging {

enum class Level : int { Debug = 0, Info = 1, Warn = 2, Error = 3 };

const char *levelName(Level L);

/// Parse "debug" / "info" / "warn" / "error" (case-sensitive, the spelling
/// the CLIs document). Returns false on anything else.
bool parseLevel(const std::string &S, Level &Out);

/// One key/value field of a record. Quoted fields are JSON strings
/// (escaped at emit time); unquoted ones are emitted verbatim — use the
/// num/boolean constructors below, never hand-built JSON.
struct Field {
  std::string Key;
  std::string Val;
  bool Quoted = true;
};

inline Field strField(std::string Key, std::string Val) {
  return {std::move(Key), std::move(Val), true};
}
Field numField(std::string Key, int64_t V);
Field numField(std::string Key, uint64_t V);
Field numField(std::string Key, double V);
inline Field boolField(std::string Key, bool V) {
  return {std::move(Key), V ? "true" : "false", false};
}

class Logger {
public:
  struct Options {
    Level MinLevel = Level::Info;
    bool Json = false;
    /// Destination stream; not owned. Defaults to stderr when null.
    std::FILE *Out = nullptr;
  };

  Logger() = default;
  Logger(const Logger &) = delete;
  Logger &operator=(const Logger &) = delete;

  /// Reconfigure level / mode / sink (tests point Out at a tmpfile).
  void configure(const Options &O);

  bool enabled(Level L) const {
    return static_cast<int>(L) >= MinLevel.load(std::memory_order_relaxed);
  }

  void log(Level L, const std::string &Msg,
           const std::vector<Field> &Fields = {});

  /// Rate-limited variant: at most \p MaxPerSec records for \p Key per
  /// wall-clock second. Returns true when the record was written.
  bool logEvery(const std::string &Key, uint32_t MaxPerSec, Level L,
                const std::string &Msg, const std::vector<Field> &Fields = {});

  uint64_t emitted() const { return Emitted.load(std::memory_order_relaxed); }
  uint64_t suppressed() const {
    return Suppressed.load(std::memory_order_relaxed);
  }

  /// The process-wide logger every subsystem writes to.
  static Logger &global();

private:
  struct Bucket {
    int64_t WindowSec = -1;
    uint32_t InWindow = 0;
    uint64_t SuppressedRun = 0; ///< suppressed since the last emitted record
  };

  void emit(Level L, const std::string &Msg, const std::vector<Field> &Fields,
            uint64_t SuppressedRun);

  std::atomic<int> MinLevel{static_cast<int>(Level::Info)};
  std::atomic<bool> Json{false};
  std::atomic<uint64_t> Emitted{0}, Suppressed{0};
  std::mutex Mu; ///< guards Out, Buckets, and record assembly/write
  std::FILE *Out = nullptr;
  std::map<std::string, Bucket> Buckets;
};

/// Convenience wrappers over Logger::global().
void debug(const std::string &Msg, const std::vector<Field> &Fields = {});
void info(const std::string &Msg, const std::vector<Field> &Fields = {});
void warn(const std::string &Msg, const std::vector<Field> &Fields = {});
void error(const std::string &Msg, const std::vector<Field> &Fields = {});

} // namespace diderot::logging

#endif // DIDEROT_SUPPORT_LOG_H

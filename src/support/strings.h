//===--- support/strings.h - string formatting helpers -------------------===//
//
// Part of the Diderot-C++ reproduction (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small string utilities shared across the compiler and runtime. GCC 12
/// lacks std::format, so \c strf streams its arguments into a string.
///
//===----------------------------------------------------------------------===//

#ifndef DIDEROT_SUPPORT_STRINGS_H
#define DIDEROT_SUPPORT_STRINGS_H

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

namespace diderot {

/// Stream all arguments into a single std::string.
template <typename... Ts> std::string strf(const Ts &...Args) {
  if constexpr (sizeof...(Ts) == 0) {
    return std::string();
  } else {
    std::ostringstream OS;
    (OS << ... << Args);
    return OS.str();
  }
}

/// Split \p S on the single-character separator \p Sep.
std::vector<std::string> splitString(const std::string &S, char Sep);

/// Join the strings in \p Parts with \p Sep between consecutive elements.
std::string joinStrings(const std::vector<std::string> &Parts,
                        const std::string &Sep);

/// Strip ASCII whitespace from both ends of \p S.
std::string trimString(const std::string &S);

/// True if \p S begins with \p Prefix.
bool startsWith(const std::string &S, const std::string &Prefix);

/// True if \p S ends with \p Suffix.
bool endsWith(const std::string &S, const std::string &Suffix);

/// Render a double with enough digits to round-trip, without trailing cruft
/// ("1" -> "1.0" so that emitted C++ literals keep floating type).
std::string formatReal(double V);

/// Escape \p S for embedding inside a JSON string literal: quotes and
/// backslashes are backslash-escaped, control characters become \n \t \r
/// \b \f or \u00XX. The one escaping routine for every JSON producer in
/// the tree — the observe exporters, the structured logger, the daemon's
/// response bodies, and the Chrome-trace writers all route through here
/// (observe::jsonEscape forwards to it).
std::string jsonEscape(const std::string &S);

/// Checked decimal integer parse: the whole of \p S (after trimming ASCII
/// whitespace) must be an optionally-signed base-10 integer that fits the
/// output type, else returns false and leaves \p Out untouched. This is
/// the validating replacement for the bare std::atoi/atoll calls the CLIs
/// and the daemon's X-Diderot-* request headers used to make, where
/// garbage silently became 0 and overflow was undefined.
bool parseInt(const std::string &S, int &Out);
bool parseInt64(const std::string &S, int64_t &Out);

} // namespace diderot

#endif // DIDEROT_SUPPORT_STRINGS_H

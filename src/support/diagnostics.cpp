//===--- support/diagnostics.cpp ------------------------------------------===//

#include "support/diagnostics.h"

namespace diderot {

std::string Diagnostic::str() const {
  const char *Tag = "error";
  if (Lvl == Level::Warning)
    Tag = "warning";
  else if (Lvl == Level::Note)
    Tag = "note";
  if (Loc.isValid())
    return strf(Loc.str(), ": ", Tag, ": ", Message);
  return strf(Tag, ": ", Message);
}

std::string DiagnosticEngine::str() const {
  std::string Out;
  for (const Diagnostic &D : Diags) {
    Out += D.str();
    Out += '\n';
  }
  return Out;
}

} // namespace diderot

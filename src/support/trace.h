//===--- support/trace.h - request-scoped tracing primitives ----------------===//
//
// Part of the Diderot-C++ reproduction (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The vocabulary of end-to-end request tracing (docs/TRACING.md): a W3C
/// `traceparent`-compatible TraceContext minted per daemon request, spans
/// that record where a request's time went (queue wait, compile vs cache
/// hit, instantiate, run, supersteps), and the bounded ring of recently
/// finished span trees behind `GET /trace`.
///
/// The paper's BSP model gives the runtime natural span boundaries —
/// supersteps, barriers, per-worker blocks — and observe::Recorder has
/// collected those since PR 1, but only *per run*. This layer adds the
/// request dimension: one 128-bit trace id carried from the HTTP accept
/// through the scheduler queue and the compile cache into the run, so the
/// Recorder's spans attach as children of a job's run span instead of
/// floating free (observe::appendRunSpans).
///
/// Layering: this header is support-level — no observe, serve, or runtime
/// includes — so the logger (support/log.h) can stamp records with trace
/// ids and the daemon can mint contexts without cycles. The Chrome-trace
/// exporters over SpanTree live in observe (observe/trace_spans.cpp),
/// next to the other JSON exporters.
///
/// Clock and id generation are injectable (Clock, IdSource) so tests can
/// produce byte-stable golden span trees; production code uses the
/// process-wide steadyClock() / defaultIdSource() singletons.
///
//===----------------------------------------------------------------------===//

#ifndef DIDEROT_SUPPORT_TRACE_H
#define DIDEROT_SUPPORT_TRACE_H

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace diderot::tracing {

//===----------------------------------------------------------------------===//
// Identifiers and the W3C traceparent context
//===----------------------------------------------------------------------===//

/// A 128-bit trace id (W3C trace-context trace-id). All-zero is the
/// reserved "invalid" value, exactly as in the spec.
struct TraceId {
  uint64_t Hi = 0;
  uint64_t Lo = 0;

  bool valid() const { return (Hi | Lo) != 0; }
  friend bool operator==(const TraceId &A, const TraceId &B) {
    return A.Hi == B.Hi && A.Lo == B.Lo;
  }
  friend bool operator!=(const TraceId &A, const TraceId &B) {
    return !(A == B);
  }
};

/// 32 lower-case hex chars for a trace id, 16 for a span id.
std::string hexTraceId(const TraceId &T);
std::string hexSpanId(uint64_t S);

/// One hop of request context: which trace this request belongs to, the
/// current span, and whether the trace is sampled for detailed (per-
/// superstep) collection. Wire-compatible with the W3C `traceparent`
/// header, version 00: `00-<32 hex trace-id>-<16 hex span-id>-<2 hex
/// flags>` (flag bit 0 = sampled).
struct TraceContext {
  TraceId Trace;
  uint64_t Span = 0;
  bool Sampled = false;

  bool valid() const { return Trace.valid() && Span != 0; }
  /// Render as a `traceparent` header value.
  std::string traceparent() const;
};

/// Parse a `traceparent` header value into \p Out. Rejects (returns false,
/// leaving \p Out untouched) anything malformed: wrong field lengths,
/// non-hex digits, the unsupported version ff, an all-zero trace id or
/// span id. Unknown future versions with the version-00 field layout are
/// accepted, as the spec requires.
bool parseTraceparent(const std::string &Header, TraceContext &Out);

//===----------------------------------------------------------------------===//
// Injectable id and clock sources
//===----------------------------------------------------------------------===//

/// Generator of nonzero 64-bit ids (span ids; two calls make a trace id).
/// Thread-safe implementations required — the daemon mints ids from
/// concurrent HTTP handler threads.
class IdSource {
public:
  virtual ~IdSource() = default;
  virtual uint64_t nextId() = 0;
};

/// The process-wide id source: splitmix64 over an atomic counter, seeded
/// once from std::random_device, so ids are unpredictable across daemon
/// restarts but cheap (no lock, no per-call entropy read).
IdSource &defaultIdSource();

/// Deterministic id source for tests and golden files: 1, 2, 3, ...
class SequentialIdSource : public IdSource {
public:
  explicit SequentialIdSource(uint64_t First = 1) : Next(First) {}
  uint64_t nextId() override { return Next.fetch_add(1); }

private:
  std::atomic<uint64_t> Next;
};

/// Monotonic time source for span timestamps. One clock domain per
/// producer: every span in a SpanTree (and every tree merged into one
/// `GET /trace` timeline) must come from the same Clock.
class Clock {
public:
  virtual ~Clock() = default;
  /// Nanoseconds since an arbitrary but fixed epoch.
  virtual uint64_t nowNs() = 0;
};

/// The process-wide monotonic clock: std::chrono::steady_clock, ns since
/// first use in this process.
Clock &steadyClock();

/// Test clock: returns a script of instants, then keeps returning the last
/// one (or advances by a fixed step when constructed with one).
class ManualClock : public Clock {
public:
  explicit ManualClock(uint64_t StartNs = 0) : Now(StartNs) {}
  uint64_t nowNs() override { return Now; }
  void advance(uint64_t Ns) { Now += Ns; }
  void set(uint64_t Ns) { Now = Ns; }

private:
  uint64_t Now;
};

/// Mint a root context: fresh trace id, fresh span id.
TraceContext makeRoot(IdSource &Ids, bool Sampled);

/// Mint a child context: same trace id and sampled flag, fresh span id.
TraceContext makeChild(const TraceContext &Parent, IdSource &Ids);

//===----------------------------------------------------------------------===//
// Spans and per-request span trees
//===----------------------------------------------------------------------===//

/// One timed piece of a request. Parent links build the tree; Tid is a
/// display hint for the Chrome-trace exporters (0 = the request row,
/// 1 + w = run worker w's row).
struct Span {
  uint64_t Id = 0;
  uint64_t Parent = 0; ///< parent span id; 0 = root of the tree
  std::string Name;    ///< e.g. "queue-wait", "superstep 3"
  std::string Cat;     ///< e.g. "serve", "superstep", "strand"
  uint64_t BeginNs = 0;
  uint64_t EndNs = 0;
  int Tid = 0;
  /// Extra key/value context, exported as string args (values are
  /// json-escaped at export time, so raw text is fine here).
  std::vector<std::pair<std::string, std::string>> Args;
};

/// Everything traced for one request/job, under one trace id. Spans[0] is
/// the root span by convention (the exporters do not rely on ordering
/// beyond that).
struct SpanTree {
  TraceId Trace;
  bool Sampled = false; ///< detailed (per-superstep) collection was on
  std::string Job;      ///< daemon job id ("" outside the daemon)
  std::string Program;  ///< program name
  std::vector<Span> Spans;

  /// Append a finished span and return its id (convenience for builders).
  uint64_t add(Span S) {
    Spans.push_back(std::move(S));
    return Spans.back().Id;
  }
};

/// Bounded buffer of recently finished span trees — the store behind
/// `GET /trace`. Thread-safe; the oldest trees are evicted beyond the
/// capacity, so a long-lived daemon's memory stays bounded no matter the
/// sampling rate.
class TraceRing {
public:
  explicit TraceRing(size_t Capacity = 64) : Cap(Capacity ? Capacity : 1) {}

  void add(SpanTree T);
  /// All retained trees, oldest first.
  std::vector<SpanTree> snapshot() const;
  size_t size() const;
  size_t capacity() const { return Cap; }

private:
  mutable std::mutex Mu;
  size_t Cap;
  std::deque<SpanTree> Trees;
};

//===----------------------------------------------------------------------===//
// Head-based sampling
//===----------------------------------------------------------------------===//

/// Parse a sampling spec: "1/16" (one in sixteen), a bare denominator
/// ("16"), "1" / "all" (every request), "0" / "off" (never). Returns false
/// on malformed input, leaving \p N untouched.
bool parseSampleSpec(const std::string &Spec, uint32_t &N);

/// Deterministic 1-in-N head sampler: the decision is made at request
/// arrival (before any work), so unsampled requests pay nothing beyond one
/// atomic increment. N = 0 never samples, N = 1 always does.
class HeadSampler {
public:
  explicit HeadSampler(uint32_t N = 0) : Denom(N) {}

  void setRate(uint32_t N) { Denom.store(N, std::memory_order_relaxed); }
  uint32_t rate() const { return Denom.load(std::memory_order_relaxed); }

  /// Decide for the next request. The first request of every window of N
  /// is sampled, so a freshly started daemon samples its very first job —
  /// handy for smoke tests and for operators kicking the tires.
  bool sample() {
    uint32_t N = Denom.load(std::memory_order_relaxed);
    if (N == 0)
      return false;
    if (N == 1)
      return true;
    return Count.fetch_add(1, std::memory_order_relaxed) % N == 0;
  }

private:
  std::atomic<uint32_t> Denom;
  std::atomic<uint64_t> Count{0};
};

} // namespace diderot::tracing

#endif // DIDEROT_SUPPORT_TRACE_H

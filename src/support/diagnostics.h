//===--- support/diagnostics.h - compiler diagnostics --------------------===//
//
// Part of the Diderot-C++ reproduction (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A diagnostic sink shared by the lexer, parser, and type checker. Front-end
/// phases report errors here and continue where recovery is possible; the
/// driver refuses to proceed past a phase that produced errors.
///
//===----------------------------------------------------------------------===//

#ifndef DIDEROT_SUPPORT_DIAGNOSTICS_H
#define DIDEROT_SUPPORT_DIAGNOSTICS_H

#include <string>
#include <vector>

#include "support/location.h"

namespace diderot {

/// A single compiler diagnostic.
struct Diagnostic {
  enum class Level { Error, Warning, Note };
  Level Lvl = Level::Error;
  SourceLoc Loc;
  std::string Message;

  std::string str() const;
};

/// Collects diagnostics produced while processing one source file.
class DiagnosticEngine {
public:
  void error(SourceLoc Loc, std::string Msg) {
    Diags.push_back({Diagnostic::Level::Error, Loc, std::move(Msg)});
    ++NumErrs;
  }
  void warning(SourceLoc Loc, std::string Msg) {
    Diags.push_back({Diagnostic::Level::Warning, Loc, std::move(Msg)});
  }
  void note(SourceLoc Loc, std::string Msg) {
    Diags.push_back({Diagnostic::Level::Note, Loc, std::move(Msg)});
  }

  bool hasErrors() const { return NumErrs > 0; }
  unsigned numErrors() const { return NumErrs; }
  const std::vector<Diagnostic> &diagnostics() const { return Diags; }

  /// All diagnostics rendered one per line.
  std::string str() const;

private:
  std::vector<Diagnostic> Diags;
  unsigned NumErrs = 0;
};

} // namespace diderot

#endif // DIDEROT_SUPPORT_DIAGNOSTICS_H

//===--- support/result.h - lightweight error propagation ----------------===//
//
// Part of the Diderot-C++ reproduction of "Diderot: A Parallel DSL for Image
// Analysis and Visualization" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Error handling for the Diderot libraries. Following the LLVM coding
/// standard we do not use C++ exceptions in the core libraries; fallible
/// operations return \c Result<T> (or \c Status when there is no payload),
/// which carries either a value or a human-readable error message.
///
//===----------------------------------------------------------------------===//

#ifndef DIDEROT_SUPPORT_RESULT_H
#define DIDEROT_SUPPORT_RESULT_H

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace diderot {

/// An error carrying a human-readable message.
class Error {
public:
  explicit Error(std::string Msg) : Msg(std::move(Msg)) {}

  const std::string &message() const { return Msg; }

private:
  std::string Msg;
};

/// Result of an operation with no payload: success or an error message.
class Status {
public:
  /// Construct a success status.
  Status() = default;

  /// Construct a failure status with message \p Msg.
  static Status error(std::string Msg) { return Status(std::move(Msg)); }

  static Status ok() { return Status(); }

  bool isOk() const { return !Failed; }
  explicit operator bool() const { return isOk(); }

  /// The error message; only meaningful when \c !isOk().
  const std::string &message() const { return Msg; }

private:
  explicit Status(std::string Msg) : Failed(true), Msg(std::move(Msg)) {}

  bool Failed = false;
  std::string Msg;
};

/// Either a value of type \p T or an \c Error. The value is accessed with
/// \c operator* / \c operator-> (asserting success) after checking \c isOk().
template <typename T> class Result {
public:
  Result(T Value) : Storage(std::move(Value)) {}
  Result(Error E) : Storage(std::move(E)) {}

  static Result error(std::string Msg) { return Result(Error(std::move(Msg))); }

  bool isOk() const { return std::holds_alternative<T>(Storage); }
  explicit operator bool() const { return isOk(); }

  T &operator*() {
    assert(isOk() && "accessing value of failed Result");
    return std::get<T>(Storage);
  }
  const T &operator*() const {
    assert(isOk() && "accessing value of failed Result");
    return std::get<T>(Storage);
  }
  T *operator->() { return &**this; }
  const T *operator->() const { return &**this; }

  /// Move the value out of the result.
  T take() {
    assert(isOk() && "taking value of failed Result");
    return std::move(std::get<T>(Storage));
  }

  const std::string &message() const {
    assert(!isOk() && "accessing error of successful Result");
    return std::get<Error>(Storage).message();
  }

private:
  std::variant<T, Error> Storage;
};

} // namespace diderot

#endif // DIDEROT_SUPPORT_RESULT_H

//===--- examples/isocontours.cpp - particle-based feature sampling ----------===//
//
// The paper's Figure 7/8 example: particles seeded on a grid pick a target
// isovalue from the field at their seed, then walk Newton-Raphson steps
// along the gradient onto that isocontour. Strands that wander out of the
// field's domain (or fail to converge) die — the output is the *collection*
// of surviving particles, not a grid. Writes isocontours.pgm with the
// particles as bright dots.
//
// Build & run:  ./build/examples/isocontours [seeds-per-axis]
//
//===----------------------------------------------------------------------===//

#include <cstdio>
#include <cstdlib>

#include "driver/driver.h"
#include "image/pnm.h"
#include "synth/synth.h"

namespace {

const char *Sampler = R"(
// Detecting isocontours (paper Figure 7)
input int stepsMax = 20;
input real epsilon = 0.00001;
input int res = 80;
input image(2)[] ddro;
field#1(2)[] f = ctmr ⊛ ddro;

strand sample (int ui, int vi) {
  output vec2 pos = [ -0.95 + 1.9*real(ui)/real(res-1),
                      -0.95 + 1.9*real(vi)/real(res-1) ];
  // set isovalue to closest of 50, 30, or 10
  real f0 = 50.0 if f(pos) >= 40.0
       else 30.0 if f(pos) >= 20.0
       else 10.0;
  int steps = 0;
  update {
    if (!inside(pos, f) || steps > stepsMax)
      die;
    vec2 grad = ∇f(pos);
    vec2 delta = // the Newton-Raphson step
      normalize(grad) * (f(pos) - f0)/|grad|;
    if (|delta| < epsilon)
      stabilize;
    pos -= delta;
    steps += 1;
  }
}

initially { sample(ui, vi) | vi in 0 .. res-1, ui in 0 .. res-1 };
)";

} // namespace

int main(int Argc, char **Argv) {
  using namespace diderot;
  int Res = Argc > 1 ? std::atoi(Argv[1]) : 80;
  const int ImgSize = 256;

  Image Portrait = synth::portrait(ImgSize);

  Result<CompiledProgram> CP = compileString(Sampler, {}, "isocontours");
  if (!CP.isOk()) {
    std::fprintf(stderr, "%s\n", CP.message().c_str());
    return 1;
  }
  Result<std::unique_ptr<rt::ProgramInstance>> Inst = CP->instantiate();
  if (!Inst.isOk()) {
    std::fprintf(stderr, "%s\n", Inst.message().c_str());
    return 1;
  }
  rt::ProgramInstance &I = **Inst;
  I.setInputImage("ddro", Portrait);
  I.setInputInt("res", Res);
  if (Status S = I.initialize(); !S.isOk()) {
    std::fprintf(stderr, "%s\n", S.message().c_str());
    return 1;
  }
  Result<rt::RunStats> Steps = I.run(1000, 8);
  if (!Steps.isOk()) {
    std::fprintf(stderr, "%s\n", Steps.message().c_str());
    return 1;
  }
  std::vector<double> Pos;
  I.getOutput("pos", Pos);
  size_t NStable = Pos.size() / 2;
  std::printf("%d seeds -> %zu particles on isocontours, %zu died, "
              "%d supersteps\n",
              Res * Res, NStable, I.numDead(), Steps->Steps);

  // Plot: dim portrait underlay, particles as bright dots.
  std::vector<double> Pix(static_cast<size_t>(ImgSize * ImgSize));
  for (int Y = 0; Y < ImgSize; ++Y)
    for (int X = 0; X < ImgSize; ++X) {
      int Idx[2] = {X, Y};
      Pix[static_cast<size_t>(Y * ImgSize + X)] =
          0.6 * Portrait.sample(Idx, 0) / 60.0;
    }
  for (size_t K = 0; K < NStable; ++K) {
    int X = static_cast<int>((Pos[2 * K] + 1.0) / 2.0 * (ImgSize - 1) + 0.5);
    int Y =
        static_cast<int>((Pos[2 * K + 1] + 1.0) / 2.0 * (ImgSize - 1) + 0.5);
    if (X >= 0 && X < ImgSize && Y >= 0 && Y < ImgSize)
      Pix[static_cast<size_t>(Y * ImgSize + X)] = 1.0;
  }
  if (Status S = writePgm("isocontours.pgm", ImgSize, ImgSize, Pix);
      !S.isOk()) {
    std::fprintf(stderr, "%s\n", S.message().c_str());
    return 1;
  }
  std::printf("wrote isocontours.pgm\n");
  return 0;
}

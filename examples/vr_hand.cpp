//===--- examples/vr_hand.cpp - direct volume rendering ----------------------===//
//
// The paper's running example (Figure 1): a direct volume renderer where
// each strand is a ray marching through a continuous scalar field
// reconstructed from a CT-like volume, shading surfaces with the field's
// gradient. Renders the synthetic hand dataset and writes vr_hand.pgm.
//
// Build & run:  ./build/examples/vr_hand [size]     (default volume 64^3)
//
//===----------------------------------------------------------------------===//

#include <cstdio>
#include <cstdlib>

#include "driver/driver.h"
#include "image/pnm.h"
#include "observe/observe.h"
#include "synth/synth.h"

namespace {

const char *Renderer = R"(
// Direct volume rendering (paper Figure 1)
input real stepSz = 0.03;
input vec3 eye = [0.0, 0.1, 6.0];
input vec3 orig = [-0.36, -0.17, 4.0];
input vec3 cVec = [0.002, 0.0, 0.0];
input vec3 rVec = [0.0, 0.002, 0.0];
input real opacMin = 0.25;
input real opacMax = 0.65;
input int resU = 360;
input int resV = 270;
input image(3)[] img;
field#2(3)[] F = img ⊛ bspln3;

strand RayCast (int r, int c) {
  vec3 pos = orig + real(r)*rVec + real(c)*cVec;
  vec3 dir = normalize(pos - eye);
  real t = 0.0;
  real transp = 1.0;
  output real gray = 0.0;

  update {
    pos = pos + stepSz*dir;
    t = t + stepSz;
    if (inside(pos, F)) {
      real val = F(pos);
      if (val > opacMin) {
        real opac = 1.0 if val > opacMax
                    else (val - opacMin)/(opacMax - opacMin);
        vec3 norm = -normalize(∇F(pos));
        gray += transp*opac*max(0.0, -dir • norm);
        transp *= 1.0 - opac;
      }
    }
    if (t > 8.0) stabilize;
  }
}

initially [ RayCast(vi, ui) | vi in 0 .. resV-1, ui in 0 .. resU-1 ];
)";

} // namespace

int main(int Argc, char **Argv) {
  using namespace diderot;
  int VolSize = Argc > 1 ? std::atoi(Argv[1]) : 64;
  const int ResU = 360, ResV = 270;

  std::printf("synthesizing %d^3 hand volume...\n", VolSize);
  Image Hand = synth::ctHand(VolSize);

  CompileOptions Opts; // native engine, single precision
  Result<CompiledProgram> CP = compileString(Renderer, Opts, "vr_hand");
  if (!CP.isOk()) {
    std::fprintf(stderr, "%s\n", CP.message().c_str());
    return 1;
  }
  Result<std::unique_ptr<rt::ProgramInstance>> Inst = CP->instantiate();
  if (!Inst.isOk()) {
    std::fprintf(stderr, "%s\n", Inst.message().c_str());
    return 1;
  }
  rt::ProgramInstance &I = **Inst;
  I.setInputImage("img", Hand);
  if (Status S = I.initialize(); !S.isOk()) {
    std::fprintf(stderr, "%s\n", S.message().c_str());
    return 1;
  }
  std::printf("ray casting %d rays...\n", ResU * ResV);
  // Collect telemetry so we can show where the supersteps' time went.
  Result<rt::RunStats> Steps =
      I.run(100000, /*NumWorkers=*/8, rt::DefaultBlockSize,
            /*CollectStats=*/true);
  if (!Steps.isOk()) {
    std::fprintf(stderr, "%s\n", Steps.message().c_str());
    return 1;
  }
  std::fputs(observe::formatSummary(*Steps).c_str(), stdout);
  std::vector<double> Gray;
  I.getOutput("gray", Gray);
  if (Status S = writePgm("vr_hand.pgm", ResU, ResV, Gray); !S.isOk()) {
    std::fprintf(stderr, "%s\n", S.message().c_str());
    return 1;
  }
  std::printf("done in %d supersteps; wrote vr_hand.pgm (%dx%d)\n",
              Steps->Steps, ResU, ResV);
  return 0;
}

//===--- examples/quickstart.cpp - five-minute tour of the API ---------------===//
//
// Compiles a small Diderot program from a string, feeds it an image, runs
// the bulk-synchronous strands, and reads the output — the complete
// host-application workflow in one file.
//
// The program itself samples a smooth synthetic 2-D field and its gradient
// magnitude on a small grid, demonstrating the core language idea: images
// become *continuous tensor fields* via convolution, and fields support
// higher-order operations like differentiation.
//
// Build & run:  ./build/examples/quickstart
//
//===----------------------------------------------------------------------===//

#include <cstdio>

#include "driver/driver.h"
#include "synth/synth.h"

namespace {

// A Diderot program. Things to notice:
//  * `input` globals are set by the host (or from the command line when
//    compiled with diderotc).
//  * `img ⊛ ctmr` reconstructs a continuous field from discrete samples
//    with the Catmull-Rom kernel; the field's type records that it is C1.
//  * `∇f` is a first-class field; probing happens at world-space positions.
//  * Each strand is one grid sample; `stabilize` ends its life.
const char *Program = R"(
input int res = 8;
input image(2)[] img;
field#1(2)[] f = img ⊛ ctmr;

strand Sample (int xi, int yi) {
  vec2 pos = [ -0.8 + 1.6*real(xi)/real(res-1),
               -0.8 + 1.6*real(yi)/real(res-1) ];
  output real val = 0.0;
  output real gradMag = 0.0;

  update {
    val = f(pos);
    gradMag = |∇f(pos)|;
    stabilize;
  }
}

initially [ Sample(xi, yi) | yi in 0 .. res-1, xi in 0 .. res-1 ];
)";

} // namespace

int main() {
  using namespace diderot;

  // 1. Compile. Engine::Native emits C++, invokes the host compiler, and
  //    dlopens the result (use Engine::Interp to skip the host compiler).
  CompileOptions Opts;
  Opts.Eng = Engine::Native;
  Result<CompiledProgram> CP = compileString(Program, Opts, "quickstart");
  if (!CP.isOk()) {
    std::fprintf(stderr, "compile failed:\n%s\n", CP.message().c_str());
    return 1;
  }

  // 2. Instantiate and bind inputs.
  Result<std::unique_ptr<rt::ProgramInstance>> Inst = CP->instantiate();
  if (!Inst.isOk()) {
    std::fprintf(stderr, "%s\n", Inst.message().c_str());
    return 1;
  }
  rt::ProgramInstance &I = **Inst;
  Image Portrait = synth::portrait(64); // any Image works; NRRD loads too
  if (Status S = I.setInputImage("img", Portrait); !S.isOk()) {
    std::fprintf(stderr, "%s\n", S.message().c_str());
    return 1;
  }

  // 3. Create the strands and run supersteps until all stabilize.
  if (Status S = I.initialize(); !S.isOk()) {
    std::fprintf(stderr, "%s\n", S.message().c_str());
    return 1;
  }
  // run() returns rt::RunStats; pass CollectStats=true (as diderotc's
  // --stats flag does) for per-superstep telemetry on top of the step count.
  Result<rt::RunStats> Steps = I.run(/*MaxSupersteps=*/100, /*NumWorkers=*/0);
  if (!Steps.isOk()) {
    std::fprintf(stderr, "%s\n", Steps.message().c_str());
    return 1;
  }

  // 4. Read the outputs (grid programs produce one value per strand, in
  //    iteration order).
  std::vector<double> Val, Grad;
  I.getOutput("val", Val);
  I.getOutput("gradMag", Grad);
  std::printf("ran %d superstep(s) over %zu strands\n\n", Steps->Steps,
              I.numStrands());
  std::printf("field values (rows = yi):\n");
  for (int Y = 0; Y < 8; ++Y) {
    for (int X = 0; X < 8; ++X)
      std::printf("%6.1f", Val[static_cast<size_t>(Y * 8 + X)]);
    std::printf("\n");
  }
  std::printf("\ngradient magnitudes:\n");
  for (int Y = 0; Y < 8; ++Y) {
    for (int X = 0; X < 8; ++X)
      std::printf("%6.1f", Grad[static_cast<size_t>(Y * 8 + X)]);
    std::printf("\n");
  }
  return 0;
}

//===--- examples/lic_flow.cpp - vector field visualization with LIC ---------===//
//
// The paper's Figure 5/6 example: line integral convolution. Strands blur a
// noise texture along streamlines of a 2-D vector field — an algorithm that
// is naturally per-output-pixel rather than per-input-voxel, which is
// exactly the parallel decomposition Diderot's strands capture. Writes
// lic_flow.pgm.
//
// Build & run:  ./build/examples/lic_flow [res]      (default 400x400)
//
//===----------------------------------------------------------------------===//

#include <cstdio>
#include <cstdlib>

#include "driver/driver.h"
#include "image/pnm.h"
#include "synth/synth.h"

namespace {

const char *Lic = R"(
// Line Integral Convolution (paper Figure 5)
input int stepNum = 16;
input real h = 0.008;
input int res = 400;
input image(2)[2] vecs;
input image(2)[] rand;
field#1(2)[2] V = vecs ⊛ ctmr;
field#0(2)[] R = rand ⊛ tent;

strand LIC (vec2 pos0) {
  vec2 forw = pos0;
  vec2 back = pos0;
  output real sum = R(pos0);
  int step = 0;

  update {
    // Midpoint-method streamline integration, downstream and upstream.
    forw += h*V(forw + 0.5*h*V(forw));
    back -= h*V(back - 0.5*h*V(back));
    sum += R(forw) + R(back);
    step += 1;
    if (step == stepNum) {
      // Modulate contrast by the seed point's speed.
      sum *= |V(pos0)| / real(1 + 2*stepNum);
      stabilize;
    }
  }
}

initially [ LIC([ -0.85 + 1.7*real(ui)/real(res-1),
                  -0.85 + 1.7*real(vi)/real(res-1) ])
          | vi in 0 .. res-1, ui in 0 .. res-1 ];
)";

} // namespace

int main(int Argc, char **Argv) {
  using namespace diderot;
  int Res = Argc > 1 ? std::atoi(Argv[1]) : 400;

  Image Flow = synth::flow2d(256);
  Image Noise = synth::noise2d(256);

  Result<CompiledProgram> CP = compileString(Lic, {}, "lic_flow");
  if (!CP.isOk()) {
    std::fprintf(stderr, "%s\n", CP.message().c_str());
    return 1;
  }
  Result<std::unique_ptr<rt::ProgramInstance>> Inst = CP->instantiate();
  if (!Inst.isOk()) {
    std::fprintf(stderr, "%s\n", Inst.message().c_str());
    return 1;
  }
  rt::ProgramInstance &I = **Inst;
  I.setInputImage("vecs", Flow);
  I.setInputImage("rand", Noise);
  I.setInputInt("res", Res);
  if (Status S = I.initialize(); !S.isOk()) {
    std::fprintf(stderr, "%s\n", S.message().c_str());
    return 1;
  }
  Result<rt::RunStats> Steps = I.run(1000, 8);
  if (!Steps.isOk()) {
    std::fprintf(stderr, "%s\n", Steps.message().c_str());
    return 1;
  }
  std::vector<double> Pix;
  I.getOutput("sum", Pix);
  double MaxV = 0;
  for (double V : Pix)
    MaxV = std::max(MaxV, V);
  if (Status S = writePgm("lic_flow.pgm", Res, Res, Pix, 0.0, MaxV);
      !S.isOk()) {
    std::fprintf(stderr, "%s\n", S.message().c_str());
    return 1;
  }
  std::printf("LIC of %dx%d pixels in %d supersteps; wrote lic_flow.pgm\n",
              Res, Res, Steps->Steps);
  return 0;
}

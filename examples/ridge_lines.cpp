//===--- examples/ridge_lines.cpp - vessel centerline extraction -------------===//
//
// The paper's motivating application (Sections 1-2): "extracting ridge lines
// ... to find blood vessels ... from a CT lung scan. Accurate results depend
// on tracing the centers of vessel pathways in between pixel locations,
// where gradients and Hessians are computed to locate the ridge line image
// features." Particles move by Newton steps in the plane spanned by the
// Hessian's two most-negative eigenvectors until they sit on a centerline.
//
// Prints the converged particles and a quality measure: since the synthetic
// vessels have Gaussian cross-sections, the true centerlines are known, so
// we report each particle's distance to the nearest tube axis.
//
// Build & run:  ./build/examples/ridge_lines [seeds-per-axis]
//
//===----------------------------------------------------------------------===//

#include <array>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "driver/driver.h"
#include "synth/synth.h"

namespace {

const char *Ridge = R"(
// Particle-based ridge detection (the paper's ridge3d workload)
input int stepsMax = 40;
input real epsilon = 0.0001;
input real strength = 0.1;
input int res = 12;
input image(3)[] lung;
field#2(3)[] F = lung ⊛ bspln3;

strand Ridge (int xi, int yi, int zi) {
  output vec3 pos = [ -0.7 + 1.4*real(xi)/real(res-1),
                      -0.7 + 1.4*real(yi)/real(res-1),
                      -0.7 + 1.4*real(zi)/real(res-1) ];
  int steps = 0;
  update {
    if (!inside(pos, F) || steps > stepsMax)
      die;
    vec3 grad = ∇F(pos);
    tensor[3,3] H = ∇⊗∇F(pos);
    vec3 evls = evals(H);
    tensor[3,3] evcs = evecs(H);
    if (evls[1] > -strength)
      die;
    vec3 e1 = evcs[1];
    vec3 e2 = evcs[2];
    vec3 delta = -((e1•grad)/evls[1])*e1 - ((e2•grad)/evls[2])*e2;
    if (|delta| < epsilon)
      stabilize;
    if (|delta| > 0.05)
      delta = 0.05*normalize(delta);
    pos += delta;
    steps += 1;
  }
}

initially { Ridge(xi, yi, zi) | xi in 0 .. res-1, yi in 0 .. res-1,
                                zi in 0 .. res-1 };
)";

/// The synthetic vessel tree's segments (must match synth::lungVessels).
const double Tree[][7] = {
    {0.0, -0.85, 0.0, 0.0, -0.25, 0.0, 0.10},
    {0.0, -0.25, 0.0, -0.45, 0.25, 0.15, 0.075},
    {0.0, -0.25, 0.0, 0.45, 0.25, -0.15, 0.075},
    {-0.45, 0.25, 0.15, -0.70, 0.70, 0.05, 0.055},
    {-0.45, 0.25, 0.15, -0.20, 0.70, 0.35, 0.055},
    {0.45, 0.25, -0.15, 0.70, 0.70, -0.05, 0.055},
    {0.45, 0.25, -0.15, 0.20, 0.70, -0.35, 0.055},
};

double distToSegment(const double *P, const double *A, const double *B) {
  double AB[3] = {B[0] - A[0], B[1] - A[1], B[2] - A[2]};
  double AP[3] = {P[0] - A[0], P[1] - A[1], P[2] - A[2]};
  double L2 = AB[0] * AB[0] + AB[1] * AB[1] + AB[2] * AB[2];
  double T = L2 > 0 ? (AP[0] * AB[0] + AP[1] * AB[1] + AP[2] * AB[2]) / L2
                    : 0.0;
  T = std::min(1.0, std::max(0.0, T));
  double D2 = 0;
  for (int K = 0; K < 3; ++K) {
    double D = P[K] - (A[K] + T * AB[K]);
    D2 += D * D;
  }
  return std::sqrt(D2);
}

} // namespace

int main(int Argc, char **Argv) {
  using namespace diderot;
  int Res = Argc > 1 ? std::atoi(Argv[1]) : 12;

  Image Lung = synth::lungVessels(64);

  Result<CompiledProgram> CP = compileString(Ridge, {}, "ridge_lines");
  if (!CP.isOk()) {
    std::fprintf(stderr, "%s\n", CP.message().c_str());
    return 1;
  }
  Result<std::unique_ptr<rt::ProgramInstance>> Inst = CP->instantiate();
  if (!Inst.isOk()) {
    std::fprintf(stderr, "%s\n", Inst.message().c_str());
    return 1;
  }
  rt::ProgramInstance &I = **Inst;
  I.setInputImage("lung", Lung);
  I.setInputInt("res", Res);
  if (Status S = I.initialize(); !S.isOk()) {
    std::fprintf(stderr, "%s\n", S.message().c_str());
    return 1;
  }
  Result<rt::RunStats> Steps = I.run(1000, 8);
  if (!Steps.isOk()) {
    std::fprintf(stderr, "%s\n", Steps.message().c_str());
    return 1;
  }
  std::vector<double> Pos;
  I.getOutput("pos", Pos);
  size_t N = Pos.size() / 3;
  std::printf("%d seeds -> %zu particles converged to centerlines (%zu "
              "died), %d supersteps\n",
              Res * Res * Res, N, I.numDead(), Steps->Steps);

  double Worst = 0.0, Mean = 0.0;
  for (size_t K = 0; K < N; ++K) {
    double Best = 1e9;
    for (const double *Seg : Tree)
      Best = std::min(Best, distToSegment(&Pos[3 * K], Seg, Seg + 3));
    Worst = std::max(Worst, Best);
    Mean += Best;
  }
  if (N) {
    Mean /= static_cast<double>(N);
    std::printf("distance to true centerlines: mean %.4f, worst %.4f "
                "(world units; vessel radii are 0.055-0.10)\n",
                Mean, Worst);
  }
  for (size_t K = 0; K < std::min<size_t>(N, 10); ++K)
    std::printf("  particle %2zu: (%7.4f, %7.4f, %7.4f)\n", K, Pos[3 * K],
                Pos[3 * K + 1], Pos[3 * K + 2]);
  if (N > 10)
    std::printf("  ... and %zu more\n", N - 10);
  return 0;
}

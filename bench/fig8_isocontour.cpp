//===--- bench/fig8_isocontour.cpp - reproduce the paper's Figure 8 ----------===//
//
// "Figure 8: Isocontour detection in a grayscale image": the Figure 7
// program runs Newton-Raphson iterations moving particles onto isocontours
// of a 2-D field (isovalues 50/30/10, chosen per-particle from the field
// value at its seed). Stable particles are plotted as dots over the image;
// strands that wander outside or fail to converge die.
//
// Checks: every stable particle's field value is within epsilon-ish of its
// chosen isovalue; some particles die (a collection output, not a grid).
//
//===----------------------------------------------------------------------===//

#include "bench/common.h"
#include "image/pnm.h"
#include "teem/probe.h"

using namespace diderot;
using namespace diderot::bench;

namespace {

const char *IsoSrc = R"(
// Figure 7: particle-based isocontour sampling
input int stepsMax = 20;
input real epsilon = 0.00001;
input int res = 60;
input image(2)[] ddro;
field#1(2)[] f = ctmr ⊛ ddro;

strand sample (int ui, int vi) {
  output vec2 pos = [ -0.95 + 1.9*real(ui)/real(res-1),
                      -0.95 + 1.9*real(vi)/real(res-1) ];
  real f0 = 50.0 if f(pos) >= 40.0
       else 30.0 if f(pos) >= 20.0
       else 10.0;
  int steps = 0;
  update {
    if (!inside(pos, f) || steps > stepsMax)
      die;
    vec2 grad = ∇f(pos);
    vec2 delta = normalize(grad) * (f(pos) - f0)/|grad|;
    if (|delta| < epsilon)
      stabilize;
    pos -= delta;
    steps += 1;
  }
}

initially { sample(ui, vi) | vi in 0 .. res-1, ui in 0 .. res-1 };
)";

} // namespace

int main(int Argc, char **Argv) {
  BenchOptions O = parseBenchArgs(Argc, Argv);
  int Res = std::max(10, static_cast<int>(60 * O.Scale));
  int PortraitSize = 128;
  Image Portrait = synth::portrait(PortraitSize);

  std::printf("=== Figure 8: isocontour detection ===\n\n");

  CompileOptions Opts;
  Opts.Eng = Engine::Native;
  Opts.DoublePrecision = true;
  Result<CompiledProgram> CP = compileString(IsoSrc, Opts, "isocontour");
  if (!CP.isOk()) {
    std::fprintf(stderr, "%s\n", CP.message().c_str());
    return 1;
  }
  Result<std::unique_ptr<rt::ProgramInstance>> IR = CP->instantiate();
  must(IR.isOk() ? Status::ok() : Status::error(IR.message()));
  auto &I = **IR;
  must(I.setInputImage("ddro", Portrait));
  must(I.setInputInt("res", Res));
  must(I.initialize());
  auto T0 = std::chrono::steady_clock::now();
  Result<rt::RunStats> Steps = I.run(1000, O.MaxWorkers);
  auto T1 = std::chrono::steady_clock::now();
  if (!Steps.isOk()) {
    std::fprintf(stderr, "%s\n", Steps.message().c_str());
    return 1;
  }
  // BENCH record: the timed run above plus one collected run on a fresh
  // instance (collection never contaminates the timed numbers).
  {
    Result<std::unique_ptr<rt::ProgramInstance>> SR = CP->instantiate();
    must(SR.isOk() ? Status::ok() : Status::error(SR.message()));
    auto &SI = **SR;
    must(SI.setInputImage("ddro", Portrait));
    must(SI.setInputInt("res", Res));
    must(SI.initialize());
    Result<rt::RunStats> SStats = SI.run(1000, O.MaxWorkers,
                                         rt::DefaultBlockSize,
                                         /*CollectStats=*/true);
    must(SStats.isOk() ? Status::ok() : Status::error(SStats.message()));
    writeBenchJson("fig8_isocontour",
                   {{"isocontour", O.MaxWorkers,
                     std::chrono::duration<double>(T1 - T0).count(),
                     *SStats}});
  }
  std::vector<double> Pos;
  must(I.getOutput("pos", Pos));
  size_t NStable = Pos.size() / 2;
  std::printf("%d seed particles, %d supersteps: %zu stable, %zu died\n",
              Res * Res, Steps->Steps, NStable, I.numDead());

  // Verify: each stable particle sits on one of the isocontours.
  teem::ProbeCtx Ctx(Portrait);
  Ctx.setKernel(0, teem::kernelCtmr(0));
  Ctx.setQuery(teem::ItemValue);
  Ctx.update();
  int OnContour = 0;
  double WorstErr = 0.0;
  for (size_t K = 0; K < NStable; ++K) {
    double P[2] = {Pos[2 * K], Pos[2 * K + 1]};
    if (!Ctx.probe(P))
      continue;
    double V = Ctx.value()[0];
    double Err = std::min({std::abs(V - 50.0), std::abs(V - 30.0),
                           std::abs(V - 10.0)});
    WorstErr = std::max(WorstErr, Err);
    OnContour += Err < 0.01;
  }
  std::printf("isovalue residual: %d/%zu particles within 0.01 of an "
              "isovalue (worst %.2e)  %s\n",
              OnContour, NStable, WorstErr,
              OnContour == static_cast<int>(NStable) ? "(all converged)"
                                                     : "(UNEXPECTED)");

  // Render the figure: portrait underlay with particle dots.
  std::vector<double> Pix(static_cast<size_t>(PortraitSize * PortraitSize));
  double MaxV = 60.0;
  for (int Y = 0; Y < PortraitSize; ++Y)
    for (int X = 0; X < PortraitSize; ++X) {
      int Idx[2] = {X, Y};
      Pix[static_cast<size_t>(Y * PortraitSize + X)] =
          0.75 * Portrait.sample(Idx, 0) / MaxV;
    }
  for (size_t K = 0; K < NStable; ++K) {
    int X = static_cast<int>((Pos[2 * K] + 1.0) / 2.0 * (PortraitSize - 1) +
                             0.5);
    int Y = static_cast<int>((Pos[2 * K + 1] + 1.0) / 2.0 *
                                 (PortraitSize - 1) +
                             0.5);
    if (X >= 0 && X < PortraitSize && Y >= 0 && Y < PortraitSize)
      Pix[static_cast<size_t>(Y * PortraitSize + X)] = 1.0;
  }
  must(writePgm("fig8_isocontour.pgm", PortraitSize, PortraitSize, Pix));
  std::printf("wrote fig8_isocontour.pgm (particles rendered as bright "
              "dots)\n");
  return 0;
}

//===--- bench/table2_perf.cpp - reproduce the paper's Table 2 ---------------===//
//
// "Table 2. Average performance results over 40 runs (times in seconds)":
// for each of the four benchmarks, the hand-coded Teem version (sequential,
// double-precision internals) against the compiled Diderot version at single
// and double precision, sequential and on 1, 2, and 8 workers.
//
// Absolute times differ from the paper (different machine, synthetic data);
// the claims to check are the *shape*: Diderot sequential beats Teem, double
// precision costs but does not erase the gap, and the parallel runtime
// scales.
//
//===----------------------------------------------------------------------===//

#include "bench/common.h"

using namespace diderot;
using namespace diderot::bench;

namespace {

struct PaperRow {
  const char *Name;
  double Teem;
  double Single[4]; // Seq, 1P, 2P, 8P
  double Double[4];
};

const PaperRow PaperTable[] = {
    {"vr-lite", 26.77, {14.92, 14.95, 7.59, 2.62}, {16.52, 16.44, 8.35, 2.92}},
    {"illust-vr",
     132.85,
     {54.17, 54.40, 27.55, 8.00},
     {80.63, 82.16, 41.18, 11.86}},
    {"lic2d", 3.22, {2.02, 2.03, 1.02, 0.30}, {2.47, 2.47, 1.24, 0.37}},
    {"ridge3d", 11.18, {8.40, 8.36, 4.22, 1.14}, {9.34, 10.27, 5.16, 1.39}},
};

} // namespace

int main(int Argc, char **Argv) {
  BenchOptions O = parseBenchArgs(Argc, Argv);
  WorkloadConfig C = makeConfig(O);
  Datasets D(C);

  std::printf("=== Table 2: average performance (seconds), %d run(s), "
              "median ===\n",
              O.Runs);
  std::printf("workload scale: vr %dx%d, illust %dx%d, lic %dx%d, ridge %d^3"
              "%s\n\n",
              C.Vr.ResU, C.Vr.ResV, illustParams(C, O.Full).ResU,
              illustParams(C, O.Full).ResV, C.Lic.ResU, C.Lic.ResV,
              C.Ridge.Res, O.Full ? " (paper scale)" : "");
  std::printf("%-10s | %8s | %-35s | %-35s\n", "", "Teem",
              "Diderot single (Seq/1P/2P/8P)", "Diderot double (Seq/1P/2P/8P)");
  std::printf("%.*s\n", 110,
              "--------------------------------------------------------------"
              "--------------------------------------------------");

  const Workload Ws[] = {Workload::VrLite, Workload::IllustVr, Workload::Lic2d,
                         Workload::Ridge3d};
  const int WorkerCols[4] = {0, 1, 2, O.MaxWorkers};
  std::vector<BenchRecord> Records;

  for (int Row = 0; Row < 4; ++Row) {
    Workload W = Ws[Row];
    const PaperRow &P = PaperTable[Row];
    std::printf("%-10s | paper: %6.2f | %8.2f %8.2f %8.2f %8.2f | %8.2f "
                "%8.2f %8.2f %8.2f\n",
                P.Name, P.Teem, P.Single[0], P.Single[1], P.Single[2],
                P.Single[3], P.Double[0], P.Double[1], P.Double[2],
                P.Double[3]);

    double TeemT = medianSeconds(
        O.Runs, [&] { runBaseline(W, C, D, O.Full); });

    double Ours[2][4];
    for (int DP = 0; DP < 2; ++DP) {
      CompiledProgram CP = compileWorkload(W, DP != 0);
      for (int K = 0; K < 4; ++K) {
        Ours[DP][K] =
            timeDiderotRun(CP, W, C, D, O.Full, WorkerCols[K], O.Runs);
        // One collected run per configuration, after the timed ones, for
        // the per-superstep breakdowns in BENCH_table2_perf.json.
        BenchRecord Rec;
        Rec.Name = std::string(P.Name) + (DP ? "/double" : "/single");
        Rec.Workers = WorkerCols[K];
        Rec.Seconds = Ours[DP][K];
        Rec.Stats = statsRun(CP, W, C, D, O.Full, WorkerCols[K]);
        Records.push_back(std::move(Rec));
      }
    }
    std::printf("%-10s | ours:  %6.2f | %8.2f %8.2f %8.2f %8.2f | %8.2f "
                "%8.2f %8.2f %8.2f\n",
                "", TeemT, Ours[0][0], Ours[0][1], Ours[0][2], Ours[0][3],
                Ours[1][0], Ours[1][1], Ours[1][2], Ours[1][3]);
    std::printf("%-10s | Teem/Diderot-seq speedup: paper %.2fx, ours %.2fx; "
                "Seq->%dP: paper %.2fx, ours %.2fx\n\n",
                "", P.Teem / P.Single[0], TeemT / Ours[0][0], O.MaxWorkers,
                P.Single[0] / P.Single[3], Ours[0][0] / Ours[0][3]);
  }
  writeBenchJson("table2_perf", Records);
  std::printf("(run with --full --runs 40 to approach the paper's "
              "configuration)\n");
  return 0;
}

//===--- bench/fig6_lic.cpp - reproduce the paper's Figure 6 ------------------===//
//
// "Figure 6: Line Integral Convolution (LIC) on synthetic data": run the
// lic2d program, write the LIC image, and verify the Diderot output against
// the hand-coded baseline. Streamline coherence is sanity-checked by
// comparing correlation along versus across the flow.
//
//===----------------------------------------------------------------------===//

#include "bench/common.h"
#include "image/pnm.h"

using namespace diderot;
using namespace diderot::bench;

int main(int Argc, char **Argv) {
  BenchOptions O = parseBenchArgs(Argc, Argv);
  WorkloadConfig C = makeConfig(O);
  Datasets D(C);

  std::printf("=== Figure 6: line integral convolution ===\n\n");

  CompiledProgram CP = compileWorkload(Workload::Lic2d, true);
  auto I = makeWorkloadInstance(CP, Workload::Lic2d, C, D, O.Full);
  must(I->initialize());
  auto T0 = std::chrono::steady_clock::now();
  Result<rt::RunStats> Steps = I->run(100000, O.MaxWorkers);
  auto T1 = std::chrono::steady_clock::now();
  if (!Steps.isOk()) {
    std::fprintf(stderr, "%s\n", Steps.message().c_str());
    return 1;
  }
  writeBenchJson(
      "fig6_lic",
      {{workloadName(Workload::Lic2d), O.MaxWorkers,
        std::chrono::duration<double>(T1 - T0).count(),
        statsRun(CP, Workload::Lic2d, C, D, O.Full, O.MaxWorkers)}});
  std::vector<double> Pix;
  must(I->getOutput("sum", Pix));
  double MaxV = 0;
  for (double V : Pix)
    MaxV = std::max(MaxV, V);
  must(writePgm("fig6_lic.pgm", C.Lic.ResU, C.Lic.ResV, Pix, 0.0, MaxV));

  baselines::GrayImage Base = baselines::lic2d(D.Flow, D.Noise, C.Lic);
  // The baseline treats out-of-domain noise probes as 0 while Diderot
  // clamps; compare only where streamlines stay interior (the center).
  double MaxDiff = 0.0;
  int U0 = C.Lic.ResU / 4, U1 = 3 * C.Lic.ResU / 4;
  int V0 = C.Lic.ResV / 4, V1 = 3 * C.Lic.ResV / 4;
  for (int V = V0; V < V1; ++V)
    for (int U = U0; U < U1; ++U) {
      size_t K = static_cast<size_t>(V * C.Lic.ResU + U);
      MaxDiff = std::max(MaxDiff, std::abs(Pix[K] - Base.Pix[K]));
    }

  // LIC quality: correlation along the flow must beat correlation across it.
  // Around the left vortex (centered x=-0.45) flow is tangential; compare
  // horizontal neighbors above the center (flow is horizontal there) with
  // vertical neighbors.
  auto At = [&](int U, int V) {
    return Pix[static_cast<size_t>(V * C.Lic.ResU + U)];
  };
  double AlongDiff = 0, AcrossDiff = 0;
  int N = 0;
  int CU = static_cast<int>((-0.45 - C.Lic.Lo) / (C.Lic.Hi - C.Lic.Lo) *
                            (C.Lic.ResU - 1));
  int CV = static_cast<int>((0.25 - C.Lic.Lo) / (C.Lic.Hi - C.Lic.Lo) *
                            (C.Lic.ResV - 1));
  for (int DU = -5; DU <= 5; ++DU) {
    int U = CU + DU, V = CV;
    if (U < 1 || U + 1 >= C.Lic.ResU || V < 1 || V + 1 >= C.Lic.ResV)
      continue;
    AlongDiff += std::abs(At(U + 1, V) - At(U, V));
    AcrossDiff += std::abs(At(U, V + 1) - At(U, V));
    ++N;
  }
  std::printf("lic2d: %dx%d, %d supersteps (stepNum=%d)\n", C.Lic.ResU,
              C.Lic.ResV, Steps->Steps, C.Lic.StepNum);
  std::printf("  interior max |Diderot - Teem| = %.2e  %s\n", MaxDiff,
              MaxDiff < 1e-6 ? "(images agree)" : "(MISMATCH)");
  std::printf("  streamline coherence at the vortex: mean |d along| = %.4f, "
              "|d across| = %.4f  %s\n",
              AlongDiff / N, AcrossDiff / N,
              AlongDiff < AcrossDiff ? "(blurred along the flow, as "
                                       "expected)"
                                     : "(UNEXPECTED)");
  std::printf("  wrote fig6_lic.pgm\n");
  return 0;
}

//===--- bench/fig4_curvature.cpp - reproduce the paper's Figures 1 & 4 ------===//
//
// Figure 1's renderer produces a grayscale volume rendering; Figure 4 shows
// "volume rendering with color determined by implicit surface curvatures
// (kappa1, kappa2)". This harness runs both renderers (vr-lite and
// illust-vr) through the native engine, writes fig1_vrlite.pgm /
// fig4_curvature.ppm / fig4_colormap.ppm, checks the Diderot output against
// the hand-coded baseline, and prints image statistics.
//
//===----------------------------------------------------------------------===//

#include "bench/common.h"
#include "image/pnm.h"

using namespace diderot;
using namespace diderot::bench;

int main(int Argc, char **Argv) {
  BenchOptions O = parseBenchArgs(Argc, Argv);
  WorkloadConfig C = makeConfig(O);
  Datasets D(C);

  std::printf("=== Figures 1 & 4: direct volume renderings ===\n\n");
  std::vector<BenchRecord> Records;

  // --- vr-lite (Figure 1's program) ---
  {
    CompiledProgram CP = compileWorkload(Workload::VrLite, true);
    auto I = makeWorkloadInstance(CP, Workload::VrLite, C, D, O.Full);
    must(I->initialize());
    auto T0 = std::chrono::steady_clock::now();
    Result<rt::RunStats> Steps = I->run(100000, O.MaxWorkers);
    auto T1 = std::chrono::steady_clock::now();
    if (!Steps.isOk()) {
      std::fprintf(stderr, "%s\n", Steps.message().c_str());
      return 1;
    }
    Records.push_back({workloadName(Workload::VrLite), O.MaxWorkers,
                       std::chrono::duration<double>(T1 - T0).count(),
                       statsRun(CP, Workload::VrLite, C, D, O.Full,
                                O.MaxWorkers)});
    std::vector<double> Gray;
    must(I->getOutput("gray", Gray));
    must(writePgm("fig1_vrlite.pgm", C.Vr.ResU, C.Vr.ResV, Gray, 0.0, 1.0));

    // Agreement with the hand-coded Teem-style version.
    baselines::GrayImage Base = baselines::vrLite(D.Hand, C.Vr);
    double MaxDiff = 0.0, Mean = 0.0;
    size_t Lit = 0;
    for (size_t K = 0; K < Gray.size(); ++K) {
      MaxDiff = std::max(MaxDiff, std::abs(Gray[K] - Base.Pix[K]));
      Mean += Gray[K];
      Lit += Gray[K] > 0.05;
    }
    Mean /= static_cast<double>(Gray.size());
    std::printf("vr-lite: %dx%d, %d supersteps; mean gray %.4f, lit pixels "
                "%zu (%.1f%%)\n",
                C.Vr.ResU, C.Vr.ResV, Steps->Steps, Mean, Lit,
                100.0 * Lit / Gray.size());
    std::printf("         max |Diderot - Teem| = %.2e  %s\n", MaxDiff,
                MaxDiff < 1e-6 ? "(images agree)" : "(MISMATCH)");
    std::printf("         wrote fig1_vrlite.pgm\n\n");
  }

  // --- illust-vr (Figure 3's curvature code, Figure 4's rendering) ---
  {
    baselines::VrParams P = illustParams(C, O.Full);
    CompiledProgram CP = compileWorkload(Workload::IllustVr, true);
    auto I = makeWorkloadInstance(CP, Workload::IllustVr, C, D, O.Full);
    must(I->initialize());
    auto T0 = std::chrono::steady_clock::now();
    Result<rt::RunStats> Steps = I->run(100000, O.MaxWorkers);
    auto T1 = std::chrono::steady_clock::now();
    if (!Steps.isOk()) {
      std::fprintf(stderr, "%s\n", Steps.message().c_str());
      return 1;
    }
    Records.push_back({workloadName(Workload::IllustVr), O.MaxWorkers,
                       std::chrono::duration<double>(T1 - T0).count(),
                       statsRun(CP, Workload::IllustVr, C, D, O.Full,
                                O.MaxWorkers)});
    std::vector<double> Rgb;
    must(I->getOutput("rgb", Rgb));
    must(writePpm("fig4_curvature.ppm", P.ResU, P.ResV, Rgb, 0.0, 1.0));

    baselines::RgbImage Base = baselines::illustVr(D.Hand, D.Xfer, P);
    double MaxDiff = 0.0;
    size_t Colored = 0;
    for (size_t K = 0; K < Rgb.size(); ++K) {
      MaxDiff = std::max(MaxDiff, std::abs(Rgb[K] - Base.Pix[K]));
      Colored += Rgb[K] > 0.05;
    }
    std::printf("illust-vr: %dx%d, %d supersteps; colored samples %zu\n",
                P.ResU, P.ResV, Steps->Steps, Colored);
    std::printf("           max |Diderot - Teem| = %.2e  %s\n", MaxDiff,
                MaxDiff < 1e-6 ? "(images agree)" : "(MISMATCH)");
    std::printf("           wrote fig4_curvature.ppm\n");
  }

  // --- the bivariate colormap itself (right half of Figure 4) ---
  {
    Image Map = synth::curvatureColormap(128);
    std::vector<double> Pix(Map.data());
    must(writePpm("fig4_colormap.ppm", 128, 128, Pix, 0.0, 1.0));
    std::printf("           wrote fig4_colormap.ppm (the (k1,k2) transfer "
                "function)\n");
  }
  writeBenchJson("fig4_curvature", Records);
  return 0;
}

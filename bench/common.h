//===--- bench/common.h - shared benchmark harness infrastructure -----------===//
//
// Part of the Diderot-C++ reproduction (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared plumbing for the benchmark binaries that regenerate the paper's
/// tables and figures: the four benchmark workloads (program sources,
/// synthetic datasets, and matched parameters for the Diderot and Teem-style
/// versions), wall-clock timing, and table formatting.
///
/// Every harness accepts:
///   --scale S   multiply benchmark resolutions by S (default keeps runs
///               laptop-friendly; the paper ran at larger sizes)
///   --full      paper-scale strand counts (Table 1's numbers)
///   --runs N    timing repetitions (median reported; the paper used 40)
///   --workers W override the max worker count (default 8, as the paper's
///               8-core Xeon)
///
//===----------------------------------------------------------------------===//

#ifndef DIDEROT_BENCH_COMMON_H
#define DIDEROT_BENCH_COMMON_H

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "baselines/baselines.h"
#include "driver/driver.h"
#include "observe/observe.h"
#include "synth/synth.h"

namespace diderot::bench {

/// Configured by CMake: absolute path of the repository root (for reading
/// bench/programs/*.diderot and counting baseline source lines).
#ifndef DIDEROT_REPO_DIR
#define DIDEROT_REPO_DIR "."
#endif

inline std::string repoPath(const std::string &Rel) {
  return std::string(DIDEROT_REPO_DIR) + "/" + Rel;
}

inline std::string readFileOrDie(const std::string &Path) {
  std::ifstream In(Path);
  if (!In) {
    std::fprintf(stderr, "cannot open %s\n", Path.c_str());
    std::exit(1);
  }
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

//===----------------------------------------------------------------------===//
// Command-line options
//===----------------------------------------------------------------------===//

struct BenchOptions {
  double Scale = 1.0;
  bool Full = false;
  int Runs = 3;
  int MaxWorkers = 8;
};

inline BenchOptions parseBenchArgs(int Argc, char **Argv) {
  BenchOptions O;
  for (int A = 1; A < Argc; ++A) {
    if (!std::strcmp(Argv[A], "--scale") && A + 1 < Argc)
      O.Scale = std::atof(Argv[++A]);
    else if (!std::strcmp(Argv[A], "--full"))
      O.Full = true;
    else if (!std::strcmp(Argv[A], "--runs") && A + 1 < Argc)
      O.Runs = std::atoi(Argv[++A]);
    else if (!std::strcmp(Argv[A], "--workers") && A + 1 < Argc)
      O.MaxWorkers = std::atoi(Argv[++A]);
  }
  return O;
}

//===----------------------------------------------------------------------===//
// Timing
//===----------------------------------------------------------------------===//

/// Median wall-clock seconds of \p Runs invocations of \p Fn.
template <typename FnT> double medianSeconds(int Runs, FnT &&Fn) {
  std::vector<double> Times;
  for (int R = 0; R < Runs; ++R) {
    auto T0 = std::chrono::steady_clock::now();
    Fn();
    auto T1 = std::chrono::steady_clock::now();
    Times.push_back(std::chrono::duration<double>(T1 - T0).count());
  }
  std::sort(Times.begin(), Times.end());
  return Times[Times.size() / 2];
}

//===----------------------------------------------------------------------===//
// The four benchmark workloads
//===----------------------------------------------------------------------===//

/// Which benchmark (matching the paper's Table 1 rows).
enum class Workload { VrLite, IllustVr, Lic2d, Ridge3d };

inline const char *workloadName(Workload W) {
  switch (W) {
  case Workload::VrLite:
    return "vr-lite";
  case Workload::IllustVr:
    return "illust-vr";
  case Workload::Lic2d:
    return "lic2d";
  case Workload::Ridge3d:
    return "ridge3d";
  }
  return "?";
}

inline const char *workloadProgramFile(Workload W) {
  switch (W) {
  case Workload::VrLite:
    return "bench/programs/vr_lite.diderot";
  case Workload::IllustVr:
    return "bench/programs/illust_vr.diderot";
  case Workload::Lic2d:
    return "bench/programs/lic2d.diderot";
  case Workload::Ridge3d:
    return "bench/programs/ridge3d.diderot";
  }
  return "";
}

/// Resolved sizes for one benchmark run.
struct WorkloadConfig {
  // vr-lite / illust-vr
  baselines::VrParams Vr;
  // lic2d
  baselines::LicParams Lic;
  // ridge3d
  baselines::RidgeParams Ridge;
  // dataset sizes
  int HandSize = 64;
  int LungSize = 64;
  int FlowSize = 256;
  int NoiseSize = 256;
  int XferSize = 64;

  size_t numStrands(Workload W) const {
    switch (W) {
    case Workload::VrLite:
    case Workload::IllustVr:
      return static_cast<size_t>(Vr.ResU) * Vr.ResV;
    case Workload::Lic2d:
      return static_cast<size_t>(Lic.ResU) * Lic.ResV;
    case Workload::Ridge3d:
      return static_cast<size_t>(Ridge.Res) * Ridge.Res * Ridge.Res;
    }
    return 0;
  }
};

/// The paper-scale strand counts (Table 1): vr-lite 165,600; illust-vr
/// 307,200; lic2d 572,220; ridge3d 1,728,000. `--full` selects these;
/// otherwise resolutions scale from laptop-friendly defaults.
inline WorkloadConfig makeConfig(const BenchOptions &O) {
  WorkloadConfig C;
  if (O.Full) {
    C.Vr.ResU = 480; // 480*345 = 165,600 for vr-lite
    C.Vr.ResV = 345;
    C.Lic.ResU = 756; // 756*757 = 572,292 (paper: 572,220)
    C.Lic.ResV = 757;
    C.Ridge.Res = 120; // 120^3 = 1,728,000
    C.HandSize = 128;
    C.LungSize = 128;
  } else {
    C.Vr.ResU = std::max(8, static_cast<int>(200 * O.Scale));
    C.Vr.ResV = std::max(8, static_cast<int>(150 * O.Scale));
    C.Lic.ResU = std::max(8, static_cast<int>(300 * O.Scale));
    C.Lic.ResV = std::max(8, static_cast<int>(300 * O.Scale));
    C.Ridge.Res = std::max(4, static_cast<int>(24 * std::cbrt(O.Scale)));
  }
  C.Vr.scaleToResolution();
  return C;
}

/// illust-vr uses the same geometry but twice the resolution ratio in the
/// paper (307,200 = 640x480); we render it at the same ResU/ResV as vr-lite
/// unless --full, where it gets 640x480.
inline baselines::VrParams illustParams(const WorkloadConfig &C, bool Full) {
  baselines::VrParams P; // fresh: scaleToResolution not yet applied
  if (Full) {
    P.ResU = 640;
    P.ResV = 480;
  } else {
    P.ResU = C.Vr.ResU;
    P.ResV = C.Vr.ResV;
  }
  P.scaleToResolution();
  return P;
}

/// Cached synthetic datasets for one config.
struct Datasets {
  Image Hand, Lung, Flow, Noise, Xfer;

  explicit Datasets(const WorkloadConfig &C)
      : Hand(synth::ctHand(C.HandSize)), Lung(synth::lungVessels(C.LungSize)),
        Flow(synth::flow2d(C.FlowSize)), Noise(synth::noise2d(C.NoiseSize)),
        Xfer(synth::curvatureColormap(C.XferSize)) {}
};

//===----------------------------------------------------------------------===//
// Diderot instances per workload
//===----------------------------------------------------------------------===//

/// Compile one benchmark program with the given engine options.
inline CompiledProgram compileWorkload(Workload W, bool DoublePrecision) {
  CompileOptions Opts;
  Opts.Eng = Engine::Native;
  Opts.DoublePrecision = DoublePrecision;
  std::string Src = readFileOrDie(repoPath(workloadProgramFile(W)));
  Result<CompiledProgram> CP = compileString(Src, Opts, workloadName(W));
  if (!CP.isOk()) {
    std::fprintf(stderr, "compile %s failed:\n%s\n", workloadName(W),
                 CP.message().c_str());
    std::exit(1);
  }
  return CP.take();
}

inline void must(const Status &S) {
  if (!S.isOk()) {
    std::fprintf(stderr, "error: %s\n", S.message().c_str());
    std::exit(1);
  }
}

/// Create an instance of \p CP with the workload's inputs applied.
inline std::unique_ptr<rt::ProgramInstance>
makeWorkloadInstance(CompiledProgram &CP, Workload W, const WorkloadConfig &C,
                     const Datasets &D, bool Full) {
  Result<std::unique_ptr<rt::ProgramInstance>> IR = CP.instantiate();
  if (!IR.isOk()) {
    std::fprintf(stderr, "instantiate %s failed: %s\n", workloadName(W),
                 IR.message().c_str());
    std::exit(1);
  }
  std::unique_ptr<rt::ProgramInstance> I = IR.take();
  switch (W) {
  case Workload::VrLite: {
    const baselines::VrParams &P = C.Vr;
    must(I->setInputImage("img", D.Hand));
    must(I->setInputInt("imgResU", P.ResU));
    must(I->setInputInt("imgResV", P.ResV));
    must(I->setInputReal("stepSz", P.StepSz));
    must(I->setInputReal("maxT", P.MaxT));
    must(I->setInputReal("opacMin", P.OpacMin));
    must(I->setInputReal("opacMax", P.OpacMax));
    must(I->setInputTensor("eye", {P.Eye[0], P.Eye[1], P.Eye[2]}));
    must(I->setInputTensor("orig", {P.Orig[0], P.Orig[1], P.Orig[2]}));
    must(I->setInputTensor("cVec", {P.CVec[0], P.CVec[1], P.CVec[2]}));
    must(I->setInputTensor("rVec", {P.RVec[0], P.RVec[1], P.RVec[2]}));
    break;
  }
  case Workload::IllustVr: {
    baselines::VrParams P = illustParams(C, Full);
    must(I->setInputImage("img", D.Hand));
    must(I->setInputImage("xfer", D.Xfer));
    must(I->setInputInt("imgResU", P.ResU));
    must(I->setInputInt("imgResV", P.ResV));
    must(I->setInputReal("stepSz", P.StepSz));
    must(I->setInputReal("maxT", P.MaxT));
    must(I->setInputReal("isoval", 0.5 * (P.OpacMin + P.OpacMax)));
    must(I->setInputTensor("eye", {P.Eye[0], P.Eye[1], P.Eye[2]}));
    must(I->setInputTensor("orig", {P.Orig[0], P.Orig[1], P.Orig[2]}));
    must(I->setInputTensor("cVec", {P.CVec[0], P.CVec[1], P.CVec[2]}));
    must(I->setInputTensor("rVec", {P.RVec[0], P.RVec[1], P.RVec[2]}));
    break;
  }
  case Workload::Lic2d: {
    const baselines::LicParams &P = C.Lic;
    must(I->setInputImage("vecs", D.Flow));
    must(I->setInputImage("rand", D.Noise));
    must(I->setInputInt("resU", P.ResU));
    must(I->setInputInt("resV", P.ResV));
    must(I->setInputInt("stepNum", P.StepNum));
    must(I->setInputReal("h", P.H));
    must(I->setInputReal("lo", P.Lo));
    must(I->setInputReal("hi", P.Hi));
    break;
  }
  case Workload::Ridge3d: {
    const baselines::RidgeParams &P = C.Ridge;
    must(I->setInputImage("lung", D.Lung));
    must(I->setInputInt("res", P.Res));
    must(I->setInputInt("stepsMax", P.StepsMax));
    must(I->setInputReal("epsilon", P.Epsilon));
    must(I->setInputReal("strength", P.Strength));
    must(I->setInputReal("maxStep", P.MaxStep));
    must(I->setInputReal("lo", P.Lo));
    must(I->setInputReal("hi", P.Hi));
    break;
  }
  }
  return I;
}

/// Run the baseline version of a workload (sequential, Teem-style).
inline void runBaseline(Workload W, const WorkloadConfig &C,
                        const Datasets &D, bool Full) {
  switch (W) {
  case Workload::VrLite:
    baselines::vrLite(D.Hand, C.Vr);
    return;
  case Workload::IllustVr:
    baselines::illustVr(D.Hand, D.Xfer, illustParams(C, Full));
    return;
  case Workload::Lic2d:
    baselines::lic2d(D.Flow, D.Noise, C.Lic);
    return;
  case Workload::Ridge3d:
    baselines::ridge3d(D.Lung, C.Ridge);
    return;
  }
}

/// Time one Diderot configuration: instance creation excluded, run() only
/// (the paper times the computation kernel, excluding load/init/output).
inline double timeDiderotRun(CompiledProgram &CP, Workload W,
                             const WorkloadConfig &C, const Datasets &D,
                             bool Full, int Workers, int Runs) {
  std::vector<double> Times;
  for (int R = 0; R < Runs; ++R) {
    auto I = makeWorkloadInstance(CP, W, C, D, Full);
    must(I->initialize());
    auto T0 = std::chrono::steady_clock::now();
    Result<rt::RunStats> Steps = I->run(100000, Workers);
    auto T1 = std::chrono::steady_clock::now();
    if (!Steps.isOk()) {
      std::fprintf(stderr, "run failed: %s\n", Steps.message().c_str());
      std::exit(1);
    }
    Times.push_back(std::chrono::duration<double>(T1 - T0).count());
  }
  std::sort(Times.begin(), Times.end());
  return Times[Times.size() / 2];
}

//===----------------------------------------------------------------------===//
// Telemetry capture (BENCH_*.json)
//===----------------------------------------------------------------------===//

/// One extra run of a configuration with telemetry collection enabled.
/// Kept separate from timeDiderotRun so collection never contaminates the
/// timed repetitions.
inline rt::RunStats statsRun(CompiledProgram &CP, Workload W,
                             const WorkloadConfig &C, const Datasets &D,
                             bool Full, int Workers) {
  auto I = makeWorkloadInstance(CP, W, C, D, Full);
  must(I->initialize());
  Result<rt::RunStats> R = I->run(100000, Workers, rt::DefaultBlockSize,
                                  /*CollectStats=*/true);
  if (!R.isOk()) {
    std::fprintf(stderr, "stats run failed: %s\n", R.message().c_str());
    std::exit(1);
  }
  return *R;
}

/// Run-environment metadata stamped into every BENCH_*.json so two result
/// files can be checked for comparability: numbers measured on different
/// hosts, thread counts, compilers, or revisions are not regressions.
/// bench_diff prints mismatches but never gates on them.
struct BenchMeta {
  std::string Hostname;
  int HardwareThreads = 0;
  std::string Compiler;
  std::string GitSha;
  /// Serve-daemon context, present only when the benchmark ran under (or
  /// alongside) diderotd: the daemon exports its compile-cache hit rate and
  /// queue depth via Daemon::stampEnvMeta() so results measured against a
  /// cold cache or a loaded queue are distinguishable from standalone runs.
  /// Empty strings mean "not run under a daemon" and suppress the field.
  std::string DaemonCacheHitRate; ///< DIDEROT_DAEMON_CACHE_HIT_RATE
  std::string DaemonQueueDepth;   ///< DIDEROT_DAEMON_QUEUE_DEPTH
  /// Whether the timed runs had the flight recorder armed (CollectDigests /
  /// docs/REPLAY.md). Recording hashes every strand's full state each
  /// superstep, so armed and unarmed numbers are never comparable;
  /// bench_diff flags the mismatch. Harnesses that arm recording set
  /// DIDEROT_BENCH_RECORD=1; absent or "0" means the default unarmed path.
  bool Record = false;
};

inline BenchMeta benchMeta() {
  BenchMeta M;
#if defined(__unix__) || defined(__APPLE__)
  char Host[256] = {};
  if (::gethostname(Host, sizeof(Host) - 1) == 0)
    M.Hostname = Host;
#endif
  M.HardwareThreads =
      static_cast<int>(std::thread::hardware_concurrency());
#if defined(__clang__)
  M.Compiler = "clang-" + std::to_string(__clang_major__) + "." +
               std::to_string(__clang_minor__);
#elif defined(__GNUC__)
  M.Compiler = "gcc-" + std::to_string(__GNUC__) + "." +
               std::to_string(__GNUC_MINOR__);
#else
  M.Compiler = "unknown";
#endif
#ifdef DIDEROT_GIT_SHA
  M.GitSha = DIDEROT_GIT_SHA;
#endif
  // Sanity-bound the env values: they become unquoted JSON numbers, so
  // anything that strtod cannot fully consume is dropped rather than
  // emitted as malformed JSON.
  auto NumericEnv = [](const char *Name) -> std::string {
    const char *V = std::getenv(Name);
    if (!V || !*V)
      return "";
    char *End = nullptr;
    std::strtod(V, &End);
    return (End && *End == '\0') ? std::string(V) : std::string();
  };
  M.DaemonCacheHitRate = NumericEnv("DIDEROT_DAEMON_CACHE_HIT_RATE");
  M.DaemonQueueDepth = NumericEnv("DIDEROT_DAEMON_QUEUE_DEPTH");
  const char *Rec = std::getenv("DIDEROT_BENCH_RECORD");
  M.Record = Rec && *Rec && std::strcmp(Rec, "0") != 0;
  return M;
}

/// One benchmark configuration's record in a BENCH_*.json file.
struct BenchRecord {
  std::string Name;     ///< workload / configuration label
  int Workers = 0;      ///< worker count of this configuration
  double Seconds = 0;   ///< median timed seconds (telemetry off)
  rt::RunStats Stats;   ///< per-superstep breakdown (one collected run)
};

/// Write \p Records as BENCH_<bench>.json in the current directory:
/// {"bench": ..., "meta": {...}, "records": [{"name", "workers", "seconds",
/// "stats"}]}.
inline void writeBenchJson(const std::string &Bench,
                           const std::vector<BenchRecord> &Records) {
  std::string Path = "BENCH_" + Bench + ".json";
  std::ofstream Out(Path);
  if (!Out) {
    std::fprintf(stderr, "cannot write %s\n", Path.c_str());
    return;
  }
  BenchMeta M = benchMeta();
  Out << "{\"bench\":\"" << observe::jsonEscape(Bench) << "\",";
  Out << "\"meta\":{\"hostname\":\"" << observe::jsonEscape(M.Hostname)
      << "\",\"hardware_threads\":" << M.HardwareThreads << ",\"compiler\":\""
      << observe::jsonEscape(M.Compiler) << "\",\"git_sha\":\""
      << observe::jsonEscape(M.GitSha) << "\",\"record\":"
      << (M.Record ? "true" : "false");
  if (!M.DaemonCacheHitRate.empty() || !M.DaemonQueueDepth.empty()) {
    Out << ",\"daemon\":{";
    if (!M.DaemonCacheHitRate.empty())
      Out << "\"cache_hit_rate\":" << M.DaemonCacheHitRate;
    if (!M.DaemonQueueDepth.empty())
      Out << (M.DaemonCacheHitRate.empty() ? "" : ",")
          << "\"queue_depth\":" << M.DaemonQueueDepth;
    Out << "}";
  }
  Out << "},";
  Out << "\"records\":[";
  for (size_t I = 0; I < Records.size(); ++I) {
    const BenchRecord &R = Records[I];
    if (I)
      Out << ",";
    // Names are data (benchmark labels can carry arbitrary characters), so
    // they go through jsonEscape like every other string field.
    Out << "{\"name\":\"" << observe::jsonEscape(R.Name) << "\",";
    char Buf[96];
    // %.9g keeps nanosecond-scale micro-benchmark times from rounding to 0.
    std::snprintf(Buf, sizeof(Buf), "\"workers\":%d,\"seconds\":%.9g,\"stats\":",
                  R.Workers, R.Seconds);
    Out << Buf << observe::statsJson(R.Stats) << "}";
  }
  Out << "]}\n";
  std::fprintf(stderr, "wrote %s\n", Path.c_str());
}

} // namespace diderot::bench

#endif // DIDEROT_BENCH_COMMON_H

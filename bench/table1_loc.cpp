//===--- bench/table1_loc.cpp - reproduce the paper's Table 1 ----------------===//
//
// "Table 1. The benchmark programs": lines of code (total:core) of the
// hand-written Teem versions and the Diderot versions, plus strand counts.
// The conciseness claim — "Diderot provides a significant advantage in
// conciseness over using the Teem library" — is checked by counting our own
// artifacts the way the paper counts: comments, blank lines, and timing code
// excluded; the "core" is the computational loop nest for the C versions
// (the BEGIN/END CORE markers) and the update method for Diderot.
//
//===----------------------------------------------------------------------===//

#include "bench/common.h"

using namespace diderot;
using namespace diderot::bench;

namespace {

bool isCountable(const std::string &Line) {
  std::string T;
  for (char Ch : Line)
    if (!std::isspace(static_cast<unsigned char>(Ch)))
      T += Ch;
  if (T.empty())
    return false;
  if (T.rfind("//", 0) == 0)
    return false;
  return true;
}

/// Count (total, core) lines of a source file. Core lines are delimited by
/// "// BEGIN CORE" / "// END CORE" for C++ baselines, or by the update
/// method's braces for Diderot programs.
std::pair<int, int> countCpp(const std::string &Path) {
  std::istringstream In(readFileOrDie(Path));
  std::string Line;
  int Total = 0, Core = 0;
  bool InCore = false;
  bool InBlockComment = false;
  while (std::getline(In, Line)) {
    if (Line.find("BEGIN CORE") != std::string::npos) {
      InCore = true;
      continue;
    }
    if (Line.find("END CORE") != std::string::npos) {
      InCore = false;
      continue;
    }
    if (InBlockComment) {
      if (Line.find("*/") != std::string::npos)
        InBlockComment = false;
      continue;
    }
    if (Line.find("/*") != std::string::npos &&
        Line.find("*/") == std::string::npos) {
      InBlockComment = true;
      continue;
    }
    // File-header comment blocks in our style start with //===.
    if (!isCountable(Line))
      continue;
    ++Total;
    if (InCore)
      ++Core;
  }
  return {Total, Core};
}

std::pair<int, int> countDiderot(const std::string &Path) {
  std::istringstream In(readFileOrDie(Path));
  std::string Line;
  int Total = 0, Core = 0;
  int Depth = 0;
  bool InUpdate = false;
  while (std::getline(In, Line)) {
    if (!isCountable(Line))
      continue;
    ++Total;
    // Track the update method body.
    size_t UPos = Line.find("update");
    bool Starts = UPos != std::string::npos &&
                  Line.find('{', UPos) != std::string::npos;
    if (Starts) {
      InUpdate = true;
      Depth = 0;
    }
    if (InUpdate) {
      ++Core;
      for (char Ch : Line) {
        if (Ch == '{')
          ++Depth;
        if (Ch == '}') {
          --Depth;
          if (Depth == 0)
            InUpdate = false;
        }
      }
    }
  }
  return {Total, Core};
}

struct PaperRow {
  const char *Name;
  int TeemTotal, TeemCore;
  int DdroTotal, DdroCore;
  long Strands;
  const char *Desc;
};

const PaperRow PaperTable[] = {
    {"vr-lite", 223, 44, 68, 26, 165600,
     "Simple volume-renderer with Phong shading"},
    {"illust-vr", 324, 61, 83, 39, 307200,
     "Fancy volume-renderer with cartoon shading"},
    {"lic2d", 260, 66, 53, 32, 572220, "Line Integral Convolution in 2D"},
    {"ridge3d", 360, 55, 44, 24, 1728000, "Particle-based ridge detection"},
};

} // namespace

int main(int Argc, char **Argv) {
  BenchOptions O = parseBenchArgs(Argc, Argv);
  O.Full = true; // strand counts are reported at paper scale
  WorkloadConfig C = makeConfig(O);

  const char *BaselineFiles[] = {
      "src/baselines/vr_lite.cpp", "src/baselines/illust_vr.cpp",
      "src/baselines/lic2d.cpp", "src/baselines/ridge3d.cpp"};
  const Workload Ws[] = {Workload::VrLite, Workload::IllustVr, Workload::Lic2d,
                         Workload::Ridge3d};

  std::printf("=== Table 1: the benchmark programs (LOC total:core) ===\n\n");
  std::printf("%-10s | %-18s | %-18s | %12s\n", "Program", "Teem (C++)",
              "Diderot", "# strands");
  std::printf("%-10s | %8s %9s | %8s %9s | %12s\n", "", "paper", "ours",
              "paper", "ours", "paper/ours");
  std::printf("%.*s\n", 78,
              "--------------------------------------------------------------"
              "----------------");
  for (int Row = 0; Row < 4; ++Row) {
    const PaperRow &P = PaperTable[Row];
    auto [BT, BC] = countCpp(repoPath(BaselineFiles[Row]));
    auto [DT, DC] = countDiderot(repoPath(workloadProgramFile(Ws[Row])));
    size_t Strands = Row == 1
                         ? static_cast<size_t>(illustParams(C, true).ResU) *
                               illustParams(C, true).ResV
                         : C.numStrands(Ws[Row]);
    std::printf("%-10s | %4d:%-3d %4d:%-4d | %4d:%-3d %4d:%-4d | %8ld/%ld\n",
                P.Name, P.TeemTotal, P.TeemCore, BT, BC, P.DdroTotal,
                P.DdroCore, DT, DC, P.Strands, static_cast<long>(Strands));
  }
  std::printf("\nClaim check: the Diderot programs are several times shorter "
              "than the\nhand-written versions, in total and in their "
              "computational cores.\n");
  for (int Row = 0; Row < 4; ++Row) {
    auto [BT, BC] = countCpp(repoPath(BaselineFiles[Row]));
    auto [DT, DC] = countDiderot(repoPath(workloadProgramFile(Ws[Row])));
    (void)BC;
    (void)DC;
    std::printf("  %-10s total ratio: paper %.1fx, ours %.1fx\n",
                PaperTable[Row].Name,
                double(PaperTable[Row].TeemTotal) / PaperTable[Row].DdroTotal,
                double(BT) / DT);
  }
  return 0;
}

//===--- bench/ablation_blocksize.cpp - strand block size ablation -----------===//
//
// Section 6.4: "With some experimentation, we found that the biggest
// limitation to parallelism was the lock that controls access to the
// work-list. With smaller blocks of strands (recall that we use 4,096
// strands per block), we saw a significant reduction in parallel scaling."
//
// This harness times the lic2d workload at 8 workers across block sizes and
// prints the speedup relative to sequential execution.
//
//===----------------------------------------------------------------------===//

#include "bench/common.h"

using namespace diderot;
using namespace diderot::bench;

int main(int Argc, char **Argv) {
  BenchOptions O = parseBenchArgs(Argc, Argv);
  WorkloadConfig C = makeConfig(O);
  Datasets D(C);

  std::printf("=== Ablation: work-list block size (Section 6.4) ===\n\n");
  CompiledProgram CP = compileWorkload(Workload::Lic2d, false);

  auto TimeAt = [&](int Workers, int BlockSize) {
    std::vector<double> Times;
    for (int R = 0; R < O.Runs; ++R) {
      auto I = makeWorkloadInstance(CP, Workload::Lic2d, C, D, O.Full);
      must(I->initialize());
      auto T0 = std::chrono::steady_clock::now();
      Result<rt::RunStats> S = I->run(100000, Workers, BlockSize);
      auto T1 = std::chrono::steady_clock::now();
      must(S.isOk() ? Status::ok() : Status::error(S.message()));
      Times.push_back(std::chrono::duration<double>(T1 - T0).count());
    }
    std::sort(Times.begin(), Times.end());
    return Times[Times.size() / 2];
  };

  double Seq = TimeAt(0, 4096);
  std::printf("lic2d %dx%d (%zu strands), sequential: %.3f s\n\n", C.Lic.ResU,
              C.Lic.ResV, C.numStrands(Workload::Lic2d), Seq);
  std::printf("%10s %12s %10s\n", "block size", "8P time (s)", "speedup");
  for (int Block : {4, 16, 64, 256, 1024, 4096, 16384, 65536}) {
    double T = TimeAt(O.MaxWorkers, Block);
    std::printf("%10d %12.3f %9.2fx %s\n", Block, T, Seq / T,
                Block == 4096 ? "  <- the paper's default" : "");
  }
  std::printf("\nExpected shape: tiny blocks serialize on the work-list "
              "lock; very large\nblocks under-utilize workers near the end "
              "of a superstep. 4096 sits on\nthe plateau.\n");
  return 0;
}

//===--- bench/ablation_vn.cpp - value numbering / contraction ablation -------===//
//
// Quantifies Section 5.4's claims: how much the contraction and value
// numbering passes shrink the generated code (instruction counts at LowIR)
// and speed it up (vr-lite-style value+gradient workload, where VN
// deduplicates the shared convolution reads, and an illust-vr-style Hessian
// workload, where VN detects the Hessian's symmetry).
//
//===----------------------------------------------------------------------===//

#include "bench/common.h"

using namespace diderot;
using namespace diderot::bench;

namespace {

const char *SharedProbeSrc = R"(
input image(3)[] img;
input int res = 48;
field#2(3)[] F = img ⊛ bspln3;
strand S (int xi, int yi, int zi) {
  vec3 pos = [ -0.6 + 1.2*real(xi)/real(res-1),
               -0.6 + 1.2*real(yi)/real(res-1),
               -0.6 + 1.2*real(zi)/real(res-1) ];
  output real out = 0.0;
  int it = 0;
  update {
    out += F(pos) + |∇F(pos)|;
    it += 1;
    if (it == 8) stabilize;
  }
}
initially [ S(xi, yi, zi) | xi in 0 .. res-1, yi in 0 .. res-1,
                            zi in 0 .. res-1 ];
)";

const char *HessianSrc = R"(
input image(3)[] img;
input int res = 32;
field#2(3)[] F = img ⊛ bspln3;
strand S (int xi, int yi, int zi) {
  vec3 pos = [ -0.6 + 1.2*real(xi)/real(res-1),
               -0.6 + 1.2*real(yi)/real(res-1),
               -0.6 + 1.2*real(zi)/real(res-1) ];
  output real out = 0.0;
  int it = 0;
  update {
    tensor[3,3] H = ∇⊗∇F(pos);
    out += trace(H) + |H|;
    it += 1;
    if (it == 8) stabilize;
  }
}
initially [ S(xi, yi, zi) | xi in 0 .. res-1, yi in 0 .. res-1,
                            zi in 0 .. res-1 ];
)";

void runCase(const char *Name, const char *Src, const Image &Vol, int Runs) {
  std::printf("--- %s ---\n", Name);
  std::printf("%-28s %12s %12s %10s\n", "configuration", "LowIR ops",
              "update ops", "run (s)");
  struct Cfg {
    const char *Name;
    bool Contract, VN;
  };
  const Cfg Cfgs[] = {
      {"no optimization", false, false},
      {"contract only", true, false},
      {"contract + value numbering", true, true},
  };
  double Base = 0.0;
  for (const Cfg &Cf : Cfgs) {
    CompileOptions Opts;
    Opts.Eng = Engine::Native;
    Opts.EnableContract = Cf.Contract;
    Opts.EnableValueNumbering = Cf.VN;
    Result<CompiledProgram> CP = compileString(Src, Opts, "ablate");
    if (!CP.isOk()) {
      std::fprintf(stderr, "%s\n", CP.message().c_str());
      std::exit(1);
    }
    int Ops = ir::countAllOps(CP->lowModule().Update) +
              ir::countAllOps(CP->lowModule().StrandInit);
    int UpdateOps = ir::countAllOps(CP->lowModule().Update);
    // Warm the native-object cache so host-compiler time stays out of the
    // measurement.
    {
      Result<std::unique_ptr<rt::ProgramInstance>> Warm = CP->instantiate();
      must(Warm.isOk() ? Status::ok() : Status::error(Warm.message()));
    }
    double T = medianSeconds(Runs, [&] {
      Result<std::unique_ptr<rt::ProgramInstance>> I = CP->instantiate();
      must(I.isOk() ? Status::ok() : Status::error(I.message()));
      must((*I)->setInputImage("img", Vol));
      must((*I)->initialize());
      Result<rt::RunStats> R = (*I)->run(1000, 0);
      must(R.isOk() ? Status::ok() : Status::error(R.message()));
    });
    if (Base == 0.0)
      Base = T;
    std::printf("%-28s %12d %12d %10.3f  (%.2fx)\n", Cf.Name, Ops, UpdateOps,
                T, Base / T);
  }
  std::printf("\n");
}

} // namespace

int main(int Argc, char **Argv) {
  BenchOptions O = parseBenchArgs(Argc, Argv);
  Image Vol = synth::ctHand(48);
  std::printf("=== Ablation: contraction and value numbering "
              "(Section 5.4) ===\n\n");
  runCase("value + gradient at one position (shared convolutions)",
          SharedProbeSrc, Vol, O.Runs);
  runCase("Hessian probe (symmetry detection)", HessianSrc, Vol, O.Runs);
  std::printf("Expected shape: value numbering cuts the update body "
              "instruction count\nroughly in half for the shared-probe case "
              "(the convolution reads of F and\n∇F coincide) and removes 3 "
              "of the 9 Hessian component sums (symmetry).\nRuntime gains "
              "are modest on this backend because the host C++ compiler's\n"
              "own CSE rediscovers most of the redundancy; the IR-level "
              "counts are the\nfaithful measure of the paper's "
              "domain-specific eliminations.\n");
  return 0;
}

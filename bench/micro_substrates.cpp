//===--- bench/micro_substrates.cpp - substrate micro-benchmarks -------------===//
//
// google-benchmark timings of the mathematical substrates underneath both
// the compiler's generated code and the Teem-style baseline: kernel
// evaluation (piece-table vs callback), probing (value / gradient /
// Hessian), symmetric eigendecomposition, and tensor algebra. These expose
// the architectural difference the paper credits for the performance gap:
// "a major part of the difference is Teem's use of callbacks to implement
// field probes."
//
//===----------------------------------------------------------------------===//

#include <atomic>

#include <benchmark/benchmark.h>

#include "bench/common.h"
#include "kernels/kernel.h"
#include "observe/digest.h"
#include "runtime/scheduler.h"
#include "synth/synth.h"
#include "teem/probe.h"
#include "tensor/eigen.h"

using namespace diderot;

namespace {

//===--- kernel evaluation -------------------------------------------------===//

void BM_KernelEvalPieceTable(benchmark::State &State) {
  const Kernel &K = kernels::bspln3();
  double X = 0.37;
  for (auto _ : State) {
    benchmark::DoNotOptimize(K.eval(X));
    X += 1e-9;
  }
}
BENCHMARK(BM_KernelEvalPieceTable);

void BM_KernelEvalCallback(benchmark::State &State) {
  teem::ProbeKernel K = teem::kernelBspln3(0);
  double X = 0.37;
  for (auto _ : State) {
    benchmark::DoNotOptimize(K.Eval(X, K.Parm));
    X += 1e-9;
  }
}
BENCHMARK(BM_KernelEvalCallback);

void BM_KernelWeightPolynomialHorner(benchmark::State &State) {
  // The form the compiler emits: a fixed piece polynomial, Horner scheme.
  Polynomial P = kernels::bspln3().weightPoly(0);
  double X = 0.37;
  for (auto _ : State) {
    benchmark::DoNotOptimize(P.eval(X));
    X += 1e-9;
  }
}
BENCHMARK(BM_KernelWeightPolynomialHorner);

//===--- probing -------------------------------------------------------------===//

struct ProbeFixture {
  Image Img = synth::ctHand(32);
};

void BM_TeemProbeValue(benchmark::State &State) {
  static ProbeFixture F;
  teem::ProbeCtx Ctx(F.Img);
  Ctx.setKernel(0, teem::kernelBspln3(0));
  Ctx.setQuery(teem::ItemValue);
  Ctx.update();
  double T = 0.0;
  for (auto _ : State) {
    double P[3] = {0.3 * std::sin(T), 0.3 * std::cos(T), 0.1};
    benchmark::DoNotOptimize(Ctx.probe(P));
    T += 0.01;
  }
}
BENCHMARK(BM_TeemProbeValue);

void BM_TeemProbeValueGradient(benchmark::State &State) {
  static ProbeFixture F;
  teem::ProbeCtx Ctx(F.Img);
  Ctx.setKernel(0, teem::kernelBspln3(0));
  Ctx.setKernel(1, teem::kernelBspln3(1));
  Ctx.setQuery(teem::ItemValue | teem::ItemGradient);
  Ctx.update();
  double T = 0.0;
  for (auto _ : State) {
    double P[3] = {0.3 * std::sin(T), 0.3 * std::cos(T), 0.1};
    benchmark::DoNotOptimize(Ctx.probe(P));
    T += 0.01;
  }
}
BENCHMARK(BM_TeemProbeValueGradient);

void BM_TeemProbeHessian(benchmark::State &State) {
  static ProbeFixture F;
  teem::ProbeCtx Ctx(F.Img);
  for (int L = 0; L <= 2; ++L)
    Ctx.setKernel(L, teem::kernelBspln3(L));
  Ctx.setQuery(teem::ItemValue | teem::ItemGradient | teem::ItemHessian);
  Ctx.update();
  double T = 0.0;
  for (auto _ : State) {
    double P[3] = {0.3 * std::sin(T), 0.3 * std::cos(T), 0.1};
    benchmark::DoNotOptimize(Ctx.probe(P));
    T += 0.01;
  }
}
BENCHMARK(BM_TeemProbeHessian);

//===--- eigensystems ---------------------------------------------------------===//

void BM_EigenvalsSym3(benchmark::State &State) {
  double M[9] = {2.0, 0.4, -0.1, 0.4, 1.0, 0.3, -0.1, 0.3, -1.5};
  double L[3];
  for (auto _ : State) {
    eigenvalsSym3(M, L);
    benchmark::DoNotOptimize(L[0]);
    M[0] += 1e-12;
  }
}
BENCHMARK(BM_EigenvalsSym3);

void BM_EigensystemSym3(benchmark::State &State) {
  double M[9] = {2.0, 0.4, -0.1, 0.4, 1.0, 0.3, -0.1, 0.3, -1.5};
  double L[3], V[9];
  for (auto _ : State) {
    eigensystemSym3(M, L, V);
    benchmark::DoNotOptimize(V[0]);
    M[0] += 1e-12;
  }
}
BENCHMARK(BM_EigensystemSym3);

//===--- tensor algebra -------------------------------------------------------===//

void BM_TensorMatMul3x3(benchmark::State &State) {
  Tensor A = Tensor::identity(3);
  Tensor B(Shape{3, 3}, {1, 2, 3, 4, 5, 6, 7, 8, 9});
  for (auto _ : State) {
    Tensor C = dot(A, B);
    benchmark::DoNotOptimize(C[0]);
  }
}
BENCHMARK(BM_TensorMatMul3x3);

void BM_TensorNormalize3(benchmark::State &State) {
  Tensor V = Tensor::vector({1.0, 2.0, 3.0});
  for (auto _ : State) {
    Tensor N = normalize(V);
    benchmark::DoNotOptimize(N[0]);
  }
}
BENCHMARK(BM_TensorNormalize3);

//===--- image sampling --------------------------------------------------------===//

void BM_ImageSampleClamped(benchmark::State &State) {
  static ProbeFixture F;
  int Idx[3] = {5, 6, 7};
  for (auto _ : State) {
    benchmark::DoNotOptimize(F.Img.sample(Idx, 0));
    Idx[0] = (Idx[0] + 1) & 31;
  }
}
BENCHMARK(BM_ImageSampleClamped);

//===--- scheduler default path ------------------------------------------------===//

// The fault-tolerant runtime (RunPolicy / trap boundaries) must not tax
// unpolicied runs: these time the schedulers' default path (no RunControl),
// which the bench_diff CI gate holds to within 10% wall time.

void BM_SchedulerSequential(benchmark::State &State) {
  std::vector<int> Count(4096);
  for (auto _ : State) {
    std::vector<rt::StrandStatus> S(Count.size(), rt::StrandStatus::Active);
    std::fill(Count.begin(), Count.end(), 0);
    int Steps = rt::runSequential(
        S,
        [&](size_t I) {
          return ++Count[I] >= 4 ? rt::StrandStatus::Stable
                                 : rt::StrandStatus::Active;
        },
        100);
    benchmark::DoNotOptimize(Steps);
  }
}
BENCHMARK(BM_SchedulerSequential);

void BM_SchedulerSequentialRecorded(benchmark::State &State) {
  // Same workload as BM_SchedulerSequential with the flight recorder's
  // superstep digest armed (observe/digest.h, docs/REPLAY.md): between
  // barriers the step hook hashes every strand's status byte and state
  // slot in index order and retains the canonical bits for the state log —
  // the per-superstep cost `diderotc --record` opts a run into. Measured
  // side by side with the unarmed twin above, which stays hook-free and
  // inside the bench_diff 10% gate.
  const size_t N = 4096;
  std::vector<int> Count(N);
  observe::DigestLog Log;
  for (auto _ : State) {
    std::vector<rt::StrandStatus> S(N, rt::StrandStatus::Active);
    std::fill(Count.begin(), Count.end(), 0);
    Log.clear();
    Log.NumStrands = static_cast<int64_t>(N);
    Log.NumSlots = 1;
    Log.HasStates = true;
    rt::StepHook Capture = [&](int) {
      observe::StrandStateHasher H;
      for (size_t I = 0; I < N; ++I) {
        uint8_t St = static_cast<uint8_t>(S[I]);
        H.status(St);
        Log.Status.push_back(St);
        double V = static_cast<double>(Count[I]);
        H.slot(V);
        Log.Slots.push_back(observe::canonicalBits(V));
      }
      Log.Entries.push_back(H.digest());
    };
    Capture(0); // entry 0: the post-initialize state
    int Steps = rt::runSequential(
        S,
        [&](size_t I) {
          return ++Count[I] >= 4 ? rt::StrandStatus::Stable
                                 : rt::StrandStatus::Active;
        },
        100, nullptr, nullptr, &Capture);
    benchmark::DoNotOptimize(Steps);
    benchmark::DoNotOptimize(Log.Entries.back().Lo);
  }
}
BENCHMARK(BM_SchedulerSequentialRecorded);

void BM_SchedulerParallel(benchmark::State &State) {
  for (auto _ : State) {
    std::vector<rt::StrandStatus> S(16384, rt::StrandStatus::Active);
    std::vector<std::atomic<int>> Count(S.size());
    int Steps = rt::runParallel(
        S,
        [&](size_t I) {
          return ++Count[I] >= 2 ? rt::StrandStatus::Stable
                                 : rt::StrandStatus::Active;
        },
        100, 4, 1024);
    benchmark::DoNotOptimize(Steps);
  }
}
BENCHMARK(BM_SchedulerParallel);

void BM_SchedulerParallelMetrics(benchmark::State &State) {
  // Same workload as BM_SchedulerParallel but with the metrics registry
  // armed (per-worker cells, barrier-time folds): the overhead of the
  // instrumented path, measured side by side with the unarmed one.
  for (auto _ : State) {
    std::vector<rt::StrandStatus> S(16384, rt::StrandStatus::Active);
    std::vector<std::atomic<int>> Count(S.size());
    observe::Recorder Rec;
    Rec.start(4, /*Lifecycle=*/false, /*CollectMetrics=*/true);
    int Steps = rt::runParallel(
        S,
        [&](size_t I) {
          return ++Count[I] >= 2 ? rt::StrandStatus::Stable
                                 : rt::StrandStatus::Active;
        },
        100, 4, 1024, &Rec);
    rt::RunStats R = Rec.take(Steps, 4);
    benchmark::DoNotOptimize(R.Metrics.Counters[observe::McUpdated]);
  }
}
BENCHMARK(BM_SchedulerParallelMetrics);

void BM_SchedulerPooled(benchmark::State &State) {
  // Same balanced workload as BM_SchedulerParallel, on the persistent
  // work-stealing pool: what block stealing + parked threads cost (or
  // save) when there is no imbalance to reclaim.
  for (auto _ : State) {
    std::vector<rt::StrandStatus> S(16384, rt::StrandStatus::Active);
    std::vector<std::atomic<int>> Count(S.size());
    int Steps = rt::runPooled(
        S,
        [&](size_t I) {
          return ++Count[I] >= 2 ? rt::StrandStatus::Stable
                                 : rt::StrandStatus::Active;
        },
        100, 4, 1024);
    benchmark::DoNotOptimize(Steps);
  }
}
BENCHMARK(BM_SchedulerPooled);

/// Imbalanced strand cost: work grows with the strand index, so the last
/// blocks carry several times the work of the first. On bsp the fast
/// workers idle at the barrier once the work-list drains; on the pool they
/// steal the heavy tail's blocks. Run as a bsp/pooled pair under the same
/// workload so the two substrates are directly comparable. The comparison
/// is only meaningful with real cores to spread across — on a single-core
/// machine both pairs measure OS timeslicing, not the schedulers (CPU
/// time, which the console also reports, still favors the pool there).
template <typename RunFn>
void imbalancedScheduler(benchmark::State &State, RunFn Run) {
  const size_t N = 16384;
  for (auto _ : State) {
    std::vector<rt::StrandStatus> S(N, rt::StrandStatus::Active);
    std::vector<std::atomic<int>> Count(S.size());
    int Steps = Run(S, [&](size_t I) {
      // ~0 work for the first blocks, a few microseconds for the last:
      // a linear cost ramp across the index space.
      double Acc = 0.0;
      for (size_t K = 0; K < I / 16; ++K)
        Acc += static_cast<double>(K) * 1e-9;
      benchmark::DoNotOptimize(Acc);
      return ++Count[I] >= 2 ? rt::StrandStatus::Stable
                             : rt::StrandStatus::Active;
    });
    benchmark::DoNotOptimize(Steps);
  }
}

void BM_SchedulerParallelImbalanced(benchmark::State &State) {
  imbalancedScheduler(State, [](auto &S, auto Update) {
    return rt::runParallel(S, Update, 100, 4, 1024);
  });
}
BENCHMARK(BM_SchedulerParallelImbalanced);

void BM_SchedulerPooledImbalanced(benchmark::State &State) {
  imbalancedScheduler(State, [](auto &S, auto Update) {
    return rt::runPooled(S, Update, 100, 4, 1024);
  });
}
BENCHMARK(BM_SchedulerPooledImbalanced);

//===--- BENCH json capture ----------------------------------------------------===//

/// Console output as usual, plus a BenchRecord per benchmark so the harness
/// writes the same BENCH_*.json the table/figure binaries emit (consumed by
/// bench_diff for regression gating).
class RecordingReporter : public benchmark::ConsoleReporter {
public:
  std::vector<bench::BenchRecord> Records;

  void ReportRuns(const std::vector<Run> &Runs) override {
    for (const Run &R : Runs) {
      if (R.error_occurred || R.run_type != Run::RT_Iteration)
        continue;
      bench::BenchRecord Rec;
      Rec.Name = R.benchmark_name();
      Rec.Workers = 0; // single-threaded substrate kernels
      Rec.Seconds = R.iterations > 0
                        ? R.real_accumulated_time /
                              static_cast<double>(R.iterations)
                        : R.real_accumulated_time;
      Records.push_back(std::move(Rec));
    }
    ConsoleReporter::ReportRuns(Runs);
  }
};

} // namespace

int main(int Argc, char **Argv) {
  benchmark::Initialize(&Argc, Argv);
  if (benchmark::ReportUnrecognizedArguments(Argc, Argv))
    return 1;
  RecordingReporter Rep;
  benchmark::RunSpecifiedBenchmarks(&Rep);
  benchmark::Shutdown();
  bench::writeBenchJson("micro_substrates", Rep.Records);
  return 0;
}

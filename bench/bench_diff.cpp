//===--- bench/bench_diff.cpp - BENCH_*.json regression gate -----------------===//
//
// Part of the Diderot-C++ reproduction (PLDI 2012).
//
// Compares two BENCH_*.json files (written by bench/common.h's
// writeBenchJson) record-by-record and exits nonzero when any benchmark's
// wall time regressed by more than the threshold (default 10%). Intended
// for CI: run the bench binary on the baseline commit and the candidate,
// then `bench_diff BENCH_old.json BENCH_new.json`.
//
// The parser is deliberately minimal — it scans for the "name" and
// "seconds" fields of each record rather than parsing full JSON, so it has
// no dependencies beyond the STL.
//
//===----------------------------------------------------------------------===//

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace {

struct Entry {
  std::string Name;
  double Seconds = 0;
};

/// Scan \p Text for `"name":"..."` / `"seconds":N` pairs, in order. A
/// "seconds" is attributed to the most recent "name". Escaped quotes in
/// names are handled; other escapes are kept verbatim (the comparison only
/// needs names to match themselves).
std::vector<Entry> parseBench(const std::string &Text) {
  std::vector<Entry> Out;
  std::string CurName;
  size_t I = 0;
  auto startsAt = [&](size_t P, const char *S) {
    return Text.compare(P, std::strlen(S), S) == 0;
  };
  while (I < Text.size()) {
    if (startsAt(I, "\"name\":\"")) {
      I += 8;
      CurName.clear();
      while (I < Text.size() && Text[I] != '"') {
        if (Text[I] == '\\' && I + 1 < Text.size()) {
          CurName += Text[I + 1];
          I += 2;
        } else {
          CurName += Text[I++];
        }
      }
      ++I; // closing quote
    } else if (startsAt(I, "\"seconds\":")) {
      I += 10;
      Entry E;
      E.Name = CurName;
      E.Seconds = std::strtod(Text.c_str() + I, nullptr);
      Out.push_back(std::move(E));
    } else {
      ++I;
    }
  }
  return Out;
}

/// Run-environment stamp of one BENCH_*.json (the "meta" object written by
/// bench::writeBenchJson). Older files have none; fields stay empty.
struct Meta {
  std::string Hostname, Compiler, GitSha;
  long Threads = -1;
  /// Serve-daemon stamp (bench run under diderotd, see docs/SERVING.md):
  /// daemon-mode numbers include compile-cache and queueing effects, so a
  /// daemon-vs-standalone comparison is flagged as suspect.
  bool Daemon = false;
  std::string DaemonHitRate; ///< raw "cache_hit_rate" number, "" if absent
  /// Flight-recorder stamp (docs/REPLAY.md): a run timed with the superstep
  /// digest armed is not comparable to an unarmed one. Pre-record files
  /// have no "record" key and parse as false (unarmed), the then-default.
  bool Record = false;
};

/// Value of the first `"Key":"..."` occurrence, or "" when absent. The meta
/// keys (hostname, compiler, git_sha, hardware_threads) appear nowhere else
/// in a BENCH file, so a whole-text scan is safe.
std::string scanString(const std::string &Text, const char *Key) {
  std::string Needle = std::string("\"") + Key + "\":\"";
  size_t P = Text.find(Needle);
  if (P == std::string::npos)
    return "";
  P += Needle.size();
  std::string V;
  while (P < Text.size() && Text[P] != '"') {
    if (Text[P] == '\\' && P + 1 < Text.size()) {
      V += Text[P + 1];
      P += 2;
    } else {
      V += Text[P++];
    }
  }
  return V;
}

Meta parseMeta(const std::string &Text) {
  Meta M;
  M.Hostname = scanString(Text, "hostname");
  M.Compiler = scanString(Text, "compiler");
  M.GitSha = scanString(Text, "git_sha");
  size_t P = Text.find("\"hardware_threads\":");
  if (P != std::string::npos)
    M.Threads = std::strtol(Text.c_str() + P + 19, nullptr, 10);
  M.Daemon = Text.find("\"daemon\":{") != std::string::npos;
  M.Record = Text.find("\"record\":true") != std::string::npos;
  size_t H = Text.find("\"cache_hit_rate\":");
  if (H != std::string::npos) {
    H += 17;
    while (H < Text.size() &&
           (std::isdigit(static_cast<unsigned char>(Text[H])) ||
            Text[H] == '.' || Text[H] == '-' || Text[H] == 'e' ||
            Text[H] == 'E' || Text[H] == '+'))
      M.DaemonHitRate += Text[H++];
  }
  return M;
}

/// Print (never gate on) environment differences between the two files:
/// a host or compiler mismatch makes the timing comparison suspect, but a
/// differing git SHA is the whole point of the tool. Returns the number of
/// mismatches printed so the self-test can check the detection.
int reportMetaDiff(const Meta &Old, const Meta &New) {
  int Mismatches = 0;
  auto Note = [&](const char *What, const std::string &A,
                  const std::string &B) {
    if (A == B || A.empty() || B.empty())
      return;
    std::printf("note: %s differs: %s -> %s\n", What, A.c_str(), B.c_str());
    ++Mismatches;
  };
  Note("hostname", Old.Hostname, New.Hostname);
  Note("compiler", Old.Compiler, New.Compiler);
  Note("git sha", Old.GitSha, New.GitSha);
  if (Old.Threads > 0 && New.Threads > 0 && Old.Threads != New.Threads) {
    std::printf("note: hardware threads differ: %ld -> %ld\n", Old.Threads,
                New.Threads);
    ++Mismatches;
  }
  // Unlike the fields above, one-sided presence is exactly the signal here:
  // one file measured through the daemon and the other standalone.
  if (Old.Daemon != New.Daemon) {
    std::printf("note: daemon mode differs: %s -> %s\n",
                Old.Daemon ? "daemon" : "standalone",
                New.Daemon ? "daemon" : "standalone");
    ++Mismatches;
  } else if (Old.Daemon) {
    Note("daemon cache hit rate", Old.DaemonHitRate, New.DaemonHitRate);
  }
  if (Old.Record != New.Record) {
    std::printf("note: flight recorder differs: %s -> %s\n",
                Old.Record ? "armed" : "unarmed",
                New.Record ? "armed" : "unarmed");
    ++Mismatches;
  }
  return Mismatches;
}

std::string readFileOrDie(const char *Path) {
  std::ifstream In(Path);
  if (!In) {
    std::fprintf(stderr, "bench_diff: cannot open %s\n", Path);
    std::exit(2);
  }
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

/// Compare baseline vs candidate; returns the number of regressions beyond
/// \p Threshold (fractional, e.g. 0.10 = 10%).
int compare(const std::vector<Entry> &Old, const std::vector<Entry> &New,
            double Threshold) {
  std::map<std::string, double> Base;
  for (const Entry &E : Old)
    Base[E.Name] = E.Seconds;
  int Regressions = 0;
  std::printf("%-40s %12s %12s %9s\n", "benchmark", "old(s)", "new(s)",
              "delta");
  for (const Entry &E : New) {
    auto It = Base.find(E.Name);
    if (It == Base.end()) {
      std::printf("%-40s %12s %12.6g %9s\n", E.Name.c_str(), "-", E.Seconds,
                  "new");
      continue;
    }
    double OldS = It->second;
    double Delta = OldS > 0 ? (E.Seconds - OldS) / OldS : 0.0;
    const char *Mark = "";
    if (Delta > Threshold) {
      Mark = "  REGRESSED";
      ++Regressions;
    }
    std::printf("%-40s %12.6g %12.6g %+8.1f%%%s\n", E.Name.c_str(), OldS,
                E.Seconds, Delta * 100.0, Mark);
    Base.erase(It);
  }
  for (const auto &[Name, Seconds] : Base)
    std::printf("%-40s %12.6g %12s %9s\n", Name.c_str(), Seconds, "-",
                "removed");
  return Regressions;
}

/// In-process check of the parser and the comparison logic (run by ctest).
int selfTest() {
  const char *Old = "{\"bench\":\"x\",\"meta\":{\"hostname\":\"riemann\","
                    "\"hardware_threads\":8,\"compiler\":\"gcc-12.2\","
                    "\"git_sha\":\"abc1234\"},\"records\":["
                    "{\"name\":\"a\",\"workers\":0,\"seconds\":1.000000},"
                    "{\"name\":\"b \\\"q\\\"\",\"workers\":0,"
                    "\"seconds\":2.000000},"
                    "{\"name\":\"gone\",\"workers\":0,\"seconds\":3.0}]}";
  const char *New = "{\"bench\":\"x\",\"meta\":{\"hostname\":\"gauss\","
                    "\"hardware_threads\":16,\"compiler\":\"gcc-12.2\","
                    "\"git_sha\":\"def5678\"},\"records\":["
                    "{\"name\":\"a\",\"workers\":0,\"seconds\":1.050000},"
                    "{\"name\":\"b \\\"q\\\"\",\"workers\":0,"
                    "\"seconds\":2.500000},"
                    "{\"name\":\"added\",\"workers\":0,\"seconds\":0.5}]}";
  std::vector<Entry> O = parseBench(Old), N = parseBench(New);
  if (O.size() != 3 || N.size() != 3) {
    std::fprintf(stderr, "self-test: parse failed (%zu, %zu records)\n",
                 O.size(), N.size());
    return 1;
  }
  if (O[1].Name != "b \"q\"") {
    std::fprintf(stderr, "self-test: escaped name parsed as '%s'\n",
                 O[1].Name.c_str());
    return 1;
  }
  // a: +5% (under threshold), b: +25% (one regression), gone/added ignored.
  if (compare(O, N, 0.10) != 1) {
    std::fprintf(stderr, "self-test: expected exactly one regression\n");
    return 1;
  }
  if (compare(O, N, 0.30) != 0) {
    std::fprintf(stderr, "self-test: expected no regression at 30%%\n");
    return 1;
  }
  // Metadata: hostname, threads, and sha differ; compiler matches. Printed
  // only — mismatches must never turn into regressions.
  Meta MO = parseMeta(Old), MN = parseMeta(New);
  if (MO.Hostname != "riemann" || MO.Threads != 8 ||
      MO.Compiler != "gcc-12.2" || MO.GitSha != "abc1234") {
    std::fprintf(stderr, "self-test: meta parse failed\n");
    return 1;
  }
  if (reportMetaDiff(MO, MN) != 3) {
    std::fprintf(stderr, "self-test: expected three meta mismatches\n");
    return 1;
  }
  // A pre-metadata file yields empty fields, which never count as mismatch.
  if (reportMetaDiff(Meta(), MN) != 0) {
    std::fprintf(stderr, "self-test: empty meta must not mismatch\n");
    return 1;
  }
  // Daemon stamp: presence difference is one mismatch; hit-rate drift
  // between two daemon-mode files is one mismatch.
  Meta MD = parseMeta("{\"meta\":{\"hostname\":\"gauss\","
                      "\"daemon\":{\"cache_hit_rate\":0.8750,"
                      "\"queue_depth\":2}}}");
  if (!MD.Daemon || MD.DaemonHitRate != "0.8750") {
    std::fprintf(stderr, "self-test: daemon meta parse failed ('%s')\n",
                 MD.DaemonHitRate.c_str());
    return 1;
  }
  if (reportMetaDiff(MN, MD) != 1) {
    std::fprintf(stderr, "self-test: daemon presence must mismatch once\n");
    return 1;
  }
  Meta MD2 = MD;
  MD2.DaemonHitRate = "0.5";
  if (reportMetaDiff(MD, MD2) != 1 || reportMetaDiff(MD, MD) != 0) {
    std::fprintf(stderr, "self-test: daemon hit-rate diff miscounted\n");
    return 1;
  }
  // Flight-recorder stamp: armed-vs-unarmed is one mismatch; a pre-record
  // file (no "record" key, like Old above) parses as unarmed.
  Meta MR = parseMeta("{\"meta\":{\"hostname\":\"gauss\",\"record\":true}}");
  if (!MR.Record || MO.Record) {
    std::fprintf(stderr, "self-test: record meta parse failed\n");
    return 1;
  }
  if (reportMetaDiff(MN, MR) != 1 || reportMetaDiff(MR, MR) != 0) {
    std::fprintf(stderr, "self-test: record mismatch miscounted\n");
    return 1;
  }
  std::printf("self-test passed\n");
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  double Threshold = 0.10;
  std::vector<const char *> Files;
  for (int A = 1; A < Argc; ++A) {
    if (!std::strcmp(Argv[A], "--self-test"))
      return selfTest();
    if (!std::strncmp(Argv[A], "--threshold=", 12))
      Threshold = std::atof(Argv[A] + 12) / 100.0;
    else if (!std::strcmp(Argv[A], "--threshold") && A + 1 < Argc)
      Threshold = std::atof(Argv[++A]) / 100.0;
    else
      Files.push_back(Argv[A]);
  }
  if (Files.size() != 2) {
    std::fprintf(stderr,
                 "usage: bench_diff [--threshold PCT] OLD.json NEW.json\n"
                 "       bench_diff --self-test\n"
                 "exits 1 if any benchmark slowed down by more than PCT%%\n"
                 "(default 10%%).\n");
    return 2;
  }
  std::string OldText = readFileOrDie(Files[0]);
  std::string NewText = readFileOrDie(Files[1]);
  std::vector<Entry> Old = parseBench(OldText);
  std::vector<Entry> New = parseBench(NewText);
  if (Old.empty() || New.empty()) {
    std::fprintf(stderr, "bench_diff: no records found\n");
    return 2;
  }
  reportMetaDiff(parseMeta(OldText), parseMeta(NewText));
  int Regressions = compare(Old, New, Threshold);
  if (Regressions > 0) {
    std::fprintf(stderr, "bench_diff: %d benchmark(s) regressed >%g%%\n",
                 Regressions, Threshold * 100.0);
    return 1;
  }
  return 0;
}

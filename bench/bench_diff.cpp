//===--- bench/bench_diff.cpp - BENCH_*.json regression gate -----------------===//
//
// Part of the Diderot-C++ reproduction (PLDI 2012).
//
// Compares two BENCH_*.json files (written by bench/common.h's
// writeBenchJson) record-by-record and exits nonzero when any benchmark's
// wall time regressed by more than the threshold (default 10%). Intended
// for CI: run the bench binary on the baseline commit and the candidate,
// then `bench_diff BENCH_old.json BENCH_new.json`.
//
// The parser is deliberately minimal — it scans for the "name" and
// "seconds" fields of each record rather than parsing full JSON, so it has
// no dependencies beyond the STL.
//
//===----------------------------------------------------------------------===//

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace {

struct Entry {
  std::string Name;
  double Seconds = 0;
};

/// Scan \p Text for `"name":"..."` / `"seconds":N` pairs, in order. A
/// "seconds" is attributed to the most recent "name". Escaped quotes in
/// names are handled; other escapes are kept verbatim (the comparison only
/// needs names to match themselves).
std::vector<Entry> parseBench(const std::string &Text) {
  std::vector<Entry> Out;
  std::string CurName;
  size_t I = 0;
  auto startsAt = [&](size_t P, const char *S) {
    return Text.compare(P, std::strlen(S), S) == 0;
  };
  while (I < Text.size()) {
    if (startsAt(I, "\"name\":\"")) {
      I += 8;
      CurName.clear();
      while (I < Text.size() && Text[I] != '"') {
        if (Text[I] == '\\' && I + 1 < Text.size()) {
          CurName += Text[I + 1];
          I += 2;
        } else {
          CurName += Text[I++];
        }
      }
      ++I; // closing quote
    } else if (startsAt(I, "\"seconds\":")) {
      I += 10;
      Entry E;
      E.Name = CurName;
      E.Seconds = std::strtod(Text.c_str() + I, nullptr);
      Out.push_back(std::move(E));
    } else {
      ++I;
    }
  }
  return Out;
}

std::string readFileOrDie(const char *Path) {
  std::ifstream In(Path);
  if (!In) {
    std::fprintf(stderr, "bench_diff: cannot open %s\n", Path);
    std::exit(2);
  }
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

/// Compare baseline vs candidate; returns the number of regressions beyond
/// \p Threshold (fractional, e.g. 0.10 = 10%).
int compare(const std::vector<Entry> &Old, const std::vector<Entry> &New,
            double Threshold) {
  std::map<std::string, double> Base;
  for (const Entry &E : Old)
    Base[E.Name] = E.Seconds;
  int Regressions = 0;
  std::printf("%-40s %12s %12s %9s\n", "benchmark", "old(s)", "new(s)",
              "delta");
  for (const Entry &E : New) {
    auto It = Base.find(E.Name);
    if (It == Base.end()) {
      std::printf("%-40s %12s %12.6g %9s\n", E.Name.c_str(), "-", E.Seconds,
                  "new");
      continue;
    }
    double OldS = It->second;
    double Delta = OldS > 0 ? (E.Seconds - OldS) / OldS : 0.0;
    const char *Mark = "";
    if (Delta > Threshold) {
      Mark = "  REGRESSED";
      ++Regressions;
    }
    std::printf("%-40s %12.6g %12.6g %+8.1f%%%s\n", E.Name.c_str(), OldS,
                E.Seconds, Delta * 100.0, Mark);
    Base.erase(It);
  }
  for (const auto &[Name, Seconds] : Base)
    std::printf("%-40s %12.6g %12s %9s\n", Name.c_str(), Seconds, "-",
                "removed");
  return Regressions;
}

/// In-process check of the parser and the comparison logic (run by ctest).
int selfTest() {
  const char *Old = "{\"bench\":\"x\",\"records\":["
                    "{\"name\":\"a\",\"workers\":0,\"seconds\":1.000000},"
                    "{\"name\":\"b \\\"q\\\"\",\"workers\":0,"
                    "\"seconds\":2.000000},"
                    "{\"name\":\"gone\",\"workers\":0,\"seconds\":3.0}]}";
  const char *New = "{\"bench\":\"x\",\"records\":["
                    "{\"name\":\"a\",\"workers\":0,\"seconds\":1.050000},"
                    "{\"name\":\"b \\\"q\\\"\",\"workers\":0,"
                    "\"seconds\":2.500000},"
                    "{\"name\":\"added\",\"workers\":0,\"seconds\":0.5}]}";
  std::vector<Entry> O = parseBench(Old), N = parseBench(New);
  if (O.size() != 3 || N.size() != 3) {
    std::fprintf(stderr, "self-test: parse failed (%zu, %zu records)\n",
                 O.size(), N.size());
    return 1;
  }
  if (O[1].Name != "b \"q\"") {
    std::fprintf(stderr, "self-test: escaped name parsed as '%s'\n",
                 O[1].Name.c_str());
    return 1;
  }
  // a: +5% (under threshold), b: +25% (one regression), gone/added ignored.
  if (compare(O, N, 0.10) != 1) {
    std::fprintf(stderr, "self-test: expected exactly one regression\n");
    return 1;
  }
  if (compare(O, N, 0.30) != 0) {
    std::fprintf(stderr, "self-test: expected no regression at 30%%\n");
    return 1;
  }
  std::printf("self-test passed\n");
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  double Threshold = 0.10;
  std::vector<const char *> Files;
  for (int A = 1; A < Argc; ++A) {
    if (!std::strcmp(Argv[A], "--self-test"))
      return selfTest();
    if (!std::strncmp(Argv[A], "--threshold=", 12))
      Threshold = std::atof(Argv[A] + 12) / 100.0;
    else if (!std::strcmp(Argv[A], "--threshold") && A + 1 < Argc)
      Threshold = std::atof(Argv[++A]) / 100.0;
    else
      Files.push_back(Argv[A]);
  }
  if (Files.size() != 2) {
    std::fprintf(stderr,
                 "usage: bench_diff [--threshold PCT] OLD.json NEW.json\n"
                 "       bench_diff --self-test\n"
                 "exits 1 if any benchmark slowed down by more than PCT%%\n"
                 "(default 10%%).\n");
    return 2;
  }
  std::vector<Entry> Old = parseBench(readFileOrDie(Files[0]));
  std::vector<Entry> New = parseBench(readFileOrDie(Files[1]));
  if (Old.empty() || New.empty()) {
    std::fprintf(stderr, "bench_diff: no records found\n");
    return 2;
  }
  int Regressions = compare(Old, New, Threshold);
  if (Regressions > 0) {
    std::fprintf(stderr, "bench_diff: %d benchmark(s) regressed >%g%%\n",
                 Regressions, Threshold * 100.0);
    return 1;
  }
  return 0;
}

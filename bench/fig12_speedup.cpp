//===--- bench/fig12_speedup.cpp - reproduce the paper's Figure 12 -----------===//
//
// "Figure 12: parallel speedup curves for the single-precision version of
// our benchmarks. We use the sequential version of these programs without
// the overhead of scheduling [as the baseline]. As we expect, all of the
// benchmarks scale well. For vr-lite, we see some tailing-off at eight
// threads, which we believe is because of lack of work."
//
// Prints speedup (T_seq / T_p) for p = 1..MaxWorkers per benchmark.
//
//===----------------------------------------------------------------------===//

#include <thread>

#include "bench/common.h"

using namespace diderot;
using namespace diderot::bench;

int main(int Argc, char **Argv) {
  BenchOptions O = parseBenchArgs(Argc, Argv);
  WorkloadConfig C = makeConfig(O);
  Datasets D(C);

  unsigned HW = std::thread::hardware_concurrency();
  std::printf("=== Figure 12: parallel speedup (single precision) ===\n");
  std::printf("machine: %u hardware threads; paper: 8-core Xeon X5570\n\n",
              HW);

  // Paper speedups read off Figure 12 / computed from Table 2 (Seq vs 2P,
  // 8P single precision).
  struct Paper {
    const char *Name;
    double At2, At8;
  };
  const Paper PaperSpeedups[] = {
      {"vr-lite", 14.92 / 7.59, 14.92 / 2.62},
      {"illust-vr", 54.17 / 27.55, 54.17 / 8.00},
      {"lic2d", 2.02 / 1.02, 2.02 / 0.30},
      {"ridge3d", 8.40 / 4.22, 8.40 / 1.14},
  };

  const Workload Ws[] = {Workload::VrLite, Workload::IllustVr, Workload::Lic2d,
                         Workload::Ridge3d};
  std::printf("%-10s %8s", "program", "seq(s)");
  for (int P = 1; P <= O.MaxWorkers; ++P)
    std::printf("   %2dP", P);
  std::printf("   | paper: 2P=?, 8P=?\n");

  std::vector<BenchRecord> Records;
  for (int Row = 0; Row < 4; ++Row) {
    Workload W = Ws[Row];
    CompiledProgram CP = compileWorkload(W, /*double=*/false);
    double Seq = timeDiderotRun(CP, W, C, D, O.Full, 0, O.Runs);
    std::printf("%-10s %8.3f", workloadName(W), Seq);
    Records.push_back(
        {workloadName(W), 0, Seq, statsRun(CP, W, C, D, O.Full, 0)});
    for (int P = 1; P <= O.MaxWorkers; ++P) {
      double T = timeDiderotRun(CP, W, C, D, O.Full, P, O.Runs);
      std::printf(" %5.2f", Seq / T);
      // Per-worker spans in the collected run show whether a flat curve is
      // load imbalance or lack of work (the paper's vr-lite tail-off).
      Records.push_back(
          {workloadName(W), P, T, statsRun(CP, W, C, D, O.Full, P)});
    }
    std::printf("   | paper: 2P=%.2f, 8P=%.2f\n", PaperSpeedups[Row].At2,
                PaperSpeedups[Row].At8);
  }
  writeBenchJson("fig12_speedup", Records);
  std::printf("\n(speedups are T_seq / T_p; ideal is p. Small default sizes "
              "under-utilize\nworkers — rerun with --scale 2 or --full for "
              "paper-shaped curves.)\n");
  return 0;
}
